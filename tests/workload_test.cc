// Tier-1 coverage for the workload layer (src/workload/): generator
// distribution sanity, router partition stability, engine determinism
// (same-process repeats and across sweep --jobs), adapter timing
// neutrality, the deferred background-compaction knob (off-path
// telemetry identity, on-path data equivalence, the write-stall
// admission gate), the sharded frontend's routing/scan-merge/per-DIMM
// isolation contracts, and the self-healing resilience layer (typed
// error surface, health state machine, replication failover, online
// rebuild, writer-lane restoration across contained faults).
#include <cstdint>
#include <map>
#include <set>
#include <string>
#include <tuple>
#include <vector>

#include <gtest/gtest.h>

#include "lsmkv/db.h"
#include "sweep/sweep.h"
#include "telemetry/registry.h"
#include "telemetry/session.h"
#include "workload/engine.h"
#include "workload/shard.h"
#include "xpsim/fault.h"
#include "xpsim/platform.h"

namespace xp {
namespace {

sim::ThreadCtx make_thread(unsigned id = 0, std::uint64_t seed = 1) {
  return sim::ThreadCtx({.id = id, .socket = 0, .mlp = 8, .seed = seed});
}

void drain_xp_buffers(hw::Platform& p, sim::Time t) {
  for (unsigned s = 0; s < p.timing().sockets; ++s)
    for (unsigned c = 0; c < p.timing().channels_per_socket; ++c) {
      auto& d = p.xp_dimm(s, c);
      d.buffer().flush_all(t, d.counters());
    }
}

// Telemetry fingerprint of a platform interval: byte counters + clock.
using Tuple = std::tuple<std::uint64_t, std::uint64_t, std::uint64_t,
                         std::uint64_t, sim::Time>;
Tuple fingerprint(const telemetry::Delta& d, sim::Time t) {
  const hw::XpCounters xc = d.xp_total();
  return {xc.imc_write_bytes, xc.media_write_bytes, xc.imc_read_bytes,
          xc.media_read_bytes, t};
}

// ---------------------------------------------------------------------
// Generators.

TEST(Zipfian, SkewMatchesTheory) {
  workload::XorShift rng(42);
  workload::Zipfian zipf(100, 0.99);
  const int kDraws = 200000;
  std::vector<int> counts(100, 0);
  for (int i = 0; i < kDraws; ++i) ++counts[zipf.next(rng)];

  // zeta(100, 0.99) ~= 5.187; rank 0 should get ~1/zetan of the draws.
  const double p0 = static_cast<double>(counts[0]) / kDraws;
  EXPECT_GT(p0, 0.155);
  EXPECT_LT(p0, 0.235);
  // Monotone-ish decay over the head of the distribution.
  EXPECT_GT(counts[0], counts[3]);
  EXPECT_GT(counts[1], counts[8]);
  EXPECT_GT(counts[2], counts[30]);
  // The tail is populated: a zipfian over 100 items is not a delta.
  int tail = 0;
  for (int i = 50; i < 100; ++i) tail += counts[i];
  EXPECT_GT(tail, kDraws / 100);
}

TEST(Zipfian, GrowKeepsDistributionValid) {
  workload::XorShift rng(7);
  workload::Zipfian zipf(10, 0.99);
  zipf.grow(1000);
  EXPECT_EQ(zipf.items(), 1000u);
  std::vector<int> counts(1000, 0);
  for (int i = 0; i < 50000; ++i) {
    const std::uint64_t r = zipf.next(rng);
    ASSERT_LT(r, 1000u);
    ++counts[r];
  }
  EXPECT_GT(counts[0], counts[10]);
}

TEST(Uniform, ChiSquaredWithinBounds) {
  workload::XorShift rng(1234);
  const int kBuckets = 64, kDraws = 64 * 500;
  std::vector<int> counts(kBuckets, 0);
  for (int i = 0; i < kDraws; ++i) ++counts[rng.uniform(kBuckets)];
  const double expect = static_cast<double>(kDraws) / kBuckets;
  double chi2 = 0;
  for (int c : counts) {
    const double d = c - expect;
    chi2 += d * d / expect;
  }
  // 63 degrees of freedom: mean 63, 99.9th percentile ~103. The draw
  // stream is deterministic, so this is a regression bound, not a
  // flaky statistical test.
  EXPECT_LT(chi2, 100.0);
  EXPECT_GT(chi2, 25.0);  // suspiciously uniform = broken generator
}

TEST(Scramble, CoversKeySpace) {
  std::set<std::uint64_t> seen;
  for (std::uint64_t r = 0; r < 100; ++r)
    seen.insert(workload::scramble(r, 1000));
  // FNV mixing should map 100 ranks to ~100 distinct ids.
  EXPECT_GT(seen.size(), 90u);
}

TEST(KeyName, SortableAndStreeSafe) {
  EXPECT_EQ(workload::key_name(0), "user000000000000");
  EXPECT_EQ(workload::key_name(42), "user000000000042");
  EXPECT_LT(workload::key_name(99), workload::key_name(100));
  EXPECT_LE(workload::key_name(~0ull).size(), 31u);  // stree kMaxKey
}

// ---------------------------------------------------------------------
// Router.

TEST(ShardRouter, StableAndBalanced) {
  // Pure function of (key, nshards): same key, same shard, every call.
  for (int i = 0; i < 100; ++i) {
    const std::string k = workload::key_name(i * 37);
    EXPECT_EQ(workload::shard_of(k, 4), workload::shard_of(k, 4));
    EXPECT_EQ(workload::shard_of(k, 1), 0u);
  }
  std::vector<int> counts(4, 0);
  for (int i = 0; i < 20000; ++i)
    ++counts[workload::shard_of(workload::key_name(i), 4)];
  int lo = counts[0], hi = counts[0];
  for (int c : counts) {
    lo = std::min(lo, c);
    hi = std::max(hi, c);
  }
  EXPECT_LT(hi, lo * 13 / 10) << "router imbalance: " << lo << ".." << hi;
}

// ---------------------------------------------------------------------
// Engine determinism.

workload::Result run_once(workload::StoreKind kind, char wl,
                          unsigned shards, unsigned threads,
                          bool knobs) {
  hw::Platform platform;
  const auto ns =
      workload::ShardedStore::make_namespaces(platform, shards, 48ull << 20);
  workload::ShardOptions so;
  so.kind = kind;
  so.writer_lanes = knobs;
  so.tuning.memtable_bytes = 8 << 10;
  if (knobs) {
    so.tuning.write_combine = true;
    so.tuning.read_path = true;
    so.tuning.background_compaction = kind == workload::StoreKind::kLsmkv;
  }
  workload::ShardedStore store(ns, so);
  workload::Spec spec = workload::ycsb(wl);
  spec.records = 200;
  spec.ops = 400;
  sim::ThreadCtx setup = make_thread(100);
  store.create(setup);
  workload::load(store, spec, setup);
  workload::EngineOptions eo;
  eo.threads = threads;
  eo.background_thread = so.tuning.background_compaction;
  return workload::run(store, spec, eo);
}

TEST(Engine, RepeatRunsAreByteIdentical) {
  for (char wl : {'A', 'D', 'F'}) {
    const auto a = run_once(workload::StoreKind::kLsmkv, wl, 2, 4, true);
    const auto b = run_once(workload::StoreKind::kLsmkv, wl, 2, 4, true);
    EXPECT_EQ(a.checksum, b.checksum) << wl;
    EXPECT_EQ(a.elapsed, b.elapsed) << wl;
    EXPECT_EQ(a.p50, b.p50) << wl;
    EXPECT_EQ(a.p99, b.p99) << wl;
    EXPECT_EQ(a.ops, 400u) << wl;
  }
}

TEST(Engine, DeterministicAcrossSweepJobs) {
  struct Pt {
    workload::StoreKind kind;
    char wl;
    unsigned threads;
  };
  sweep::Grid<Pt> grid;
  for (char wl : {'A', 'B'})
    for (unsigned t : {1u, 4u})
      grid.add({workload::StoreKind::kLsmkv, wl, t});
  grid.add({workload::StoreKind::kCmap, 'A', 4});
  grid.add({workload::StoreKind::kStree, 'A', 4});

  auto runner = [](const Pt& p) {
    const auto r = run_once(p.kind, p.wl, 2, p.threads, true);
    return std::tuple{r.checksum, r.elapsed, r.p50, r.p99, r.ops,
                      r.read_hits};
  };
  sweep::Pool serial(1);
  sweep::Pool par(4);
  const auto a = sweep::run_points(serial, grid, runner);
  const auto b = sweep::run_points(par, grid, runner);
  EXPECT_EQ(a, b);
}

TEST(Engine, AllFourFamiliesRunEveryWorkload) {
  for (const workload::StoreKind kind :
       {workload::StoreKind::kLsmkv, workload::StoreKind::kCmap,
        workload::StoreKind::kStree, workload::StoreKind::kNova}) {
    hw::Platform platform;
    auto& ns = platform.optane(64ull << 20);
    auto store = workload::make_store(kind, ns, {});
    workload::Spec spec = workload::ycsb('A');
    spec.records = 100;
    spec.ops = 200;
    sim::ThreadCtx setup = make_thread(100);
    store->create(setup);
    workload::load(*store, spec, setup);
    const auto r = workload::run(*store, spec, {.threads = 3});
    EXPECT_EQ(r.ops, 200u) << store->name();
    EXPECT_EQ(r.reads + r.updates + r.inserts + r.scans + r.rmws, r.ops)
        << store->name();
    EXPECT_GT(r.read_hits, 0u) << store->name();
    sim::ThreadCtx t = make_thread(50);
    EXPECT_TRUE(store->check(t).ok()) << store->name();
  }
}

// ---------------------------------------------------------------------
// Adapter timing neutrality: driving lsmkv through its StoreIface
// adapter must be telemetry-identical to driving the Db directly with
// the same options — the adapter adds no simulated time.

kv::DbOptions adapter_equiv_opts() {
  kv::DbOptions o;
  o.wal_capacity = 4 << 20;  // the adapter's sizing
  o.memtable_bytes = 64 << 10;
  return o;
}

TEST(StoreIface, LsmkvAdapterIsTimingNeutral) {
  Tuple direct, adapted;
  {
    hw::Platform platform;
    auto& ns = platform.optane(64ull << 20);
    kv::Db db(ns, adapter_equiv_opts());
    sim::ThreadCtx t = make_thread();
    db.create(t);
    const auto s0 = telemetry::Snapshot::capture(platform);
    std::string v;
    for (int i = 0; i < 300; ++i) {
      db.put(t, workload::key_name(i % 64),
             workload::make_value(i % 64, i, 80));
      if (i % 3 == 0) db.get(t, workload::key_name(i % 64), &v);
      if (i % 17 == 0) db.del(t, workload::key_name((i + 5) % 64));
    }
    t.drain();
    drain_xp_buffers(platform, t.now());
    direct =
        fingerprint(telemetry::Snapshot::capture(platform) - s0, t.now());
  }
  {
    hw::Platform platform;
    auto& ns = platform.optane(64ull << 20);
    auto store = workload::make_store(workload::StoreKind::kLsmkv, ns, {});
    sim::ThreadCtx t = make_thread();
    store->create(t);
    const auto s0 = telemetry::Snapshot::capture(platform);
    std::string v;
    for (int i = 0; i < 300; ++i) {
      store->put(t, workload::key_name(i % 64),
                 workload::make_value(i % 64, i, 80));
      if (i % 3 == 0) store->get(t, workload::key_name(i % 64), &v);
      if (i % 17 == 0) store->del(t, workload::key_name((i + 5) % 64));
    }
    t.drain();
    drain_xp_buffers(platform, t.now());
    adapted =
        fingerprint(telemetry::Snapshot::capture(platform) - s0, t.now());
  }
  EXPECT_EQ(direct, adapted);
}

// ---------------------------------------------------------------------
// Deferred background compaction.

Tuple run_db_workload(kv::DbOptions o, kv::DbStats* stats = nullptr,
                      std::map<std::string, std::string>* state = nullptr) {
  o.wal_capacity = 4 << 20;  // fit the 64 MiB namespace
  hw::Platform platform;
  auto& ns = platform.optane(64ull << 20);
  kv::Db db(ns, o);
  sim::ThreadCtx t = make_thread();
  db.create(t);
  const auto s0 = telemetry::Snapshot::capture(platform);
  for (int i = 0; i < 500; ++i)
    db.put(t, workload::key_name(i % 120),
           workload::make_value(i % 120, i, 100));
  t.drain();
  drain_xp_buffers(platform, t.now());
  if (stats != nullptr) *stats = db.stats();
  if (state != nullptr)
    for (auto& [k, v] : db.scan(t, "", 1000)) (*state)[k] = v;
  return fingerprint(telemetry::Snapshot::capture(platform) - s0, t.now());
}

// Off-path identity: with the knob off, the new DbOptions fields are
// inert — a run with explicit background_compaction=false and a wild
// stall trigger is byte- and timing-identical to the defaults.
TEST(BackgroundCompaction, OffPathTelemetryIdentical) {
  kv::DbOptions defaults;
  defaults.memtable_bytes = 4 << 10;  // force flushes + compactions
  kv::DbOptions off = defaults;
  off.background_compaction = false;
  off.l0_stall_trigger = 5;  // unused with the knob off

  kv::DbStats s_def, s_off;
  EXPECT_EQ(run_db_workload(defaults, &s_def), run_db_workload(off, &s_off));
  EXPECT_GT(s_def.compactions, 0u);  // the workload exercised the path
  EXPECT_EQ(s_def.background_compactions, 0u);
  EXPECT_EQ(s_off.background_compactions, 0u);
  EXPECT_EQ(s_off.write_stalls, 0u);
}

// On-path equivalence: deferring compactions (and paying them via the
// stall gate) must not change the database's contents.
TEST(BackgroundCompaction, StallGateBoundsL0AndPreservesData) {
  kv::DbOptions base;
  base.memtable_bytes = 4 << 10;
  base.l0_compaction_trigger = 2;

  kv::DbOptions bg = base;
  bg.background_compaction = true;
  bg.l0_stall_trigger = 4;

  std::map<std::string, std::string> state_inline, state_bg;
  kv::DbStats s_inline, s_bg;
  run_db_workload(base, &s_inline, &state_inline);
  run_db_workload(bg, &s_bg, &state_bg);
  EXPECT_EQ(state_inline, state_bg);
  // Nobody donated turns, so every deferred merge was paid at the gate.
  EXPECT_GT(s_bg.write_stalls, 0u);
  EXPECT_EQ(s_bg.write_stalls, s_bg.background_compactions);
  // Deferral batches more L0 runs per merge: strictly fewer compactions.
  EXPECT_LT(s_bg.compactions, s_inline.compactions);
}

TEST(BackgroundCompaction, DonatedTurnsRunTheMerge) {
  hw::Platform platform;
  auto& ns = platform.optane(64ull << 20);
  kv::DbOptions o;
  o.wal_capacity = 4 << 20;
  o.memtable_bytes = 4 << 10;
  o.l0_compaction_trigger = 2;
  o.background_compaction = true;
  kv::Db db(ns, o);
  sim::ThreadCtx t = make_thread();
  db.create(t);
  std::uint64_t turns = 0;
  for (int i = 0; i < 400; ++i) {
    db.put(t, workload::key_name(i % 100),
           workload::make_value(i % 100, i, 100));
    if (db.compaction_pending() && db.background_work(t)) ++turns;
  }
  EXPECT_GT(turns, 0u);
  EXPECT_EQ(db.stats().background_compactions, turns);
  EXPECT_EQ(db.stats().write_stalls, 0u);  // turns kept L0 below the gate
  EXPECT_TRUE(db.check(t).ok());
}

TEST(BackgroundCompaction, EngineBackgroundThreadDonatesTurns) {
  const auto r = run_once(workload::StoreKind::kLsmkv, 'A', 1, 4, true);
  EXPECT_GT(r.background_turns, 0u);
}

// A crash (or plain reopen) between schedule and merge: the volatile
// debt flag is re-derived from the recovered manifest.
TEST(BackgroundCompaction, PendingDebtSurvivesReopen) {
  hw::Platform platform;
  auto& ns = platform.optane(64ull << 20);
  kv::DbOptions o;
  o.wal_capacity = 4 << 20;
  o.memtable_bytes = 4 << 10;
  o.l0_compaction_trigger = 2;
  o.background_compaction = true;
  {
    kv::Db db(ns, o);
    sim::ThreadCtx t = make_thread();
    db.create(t);
    int i = 0;
    while (!db.compaction_pending())
      db.put(t, workload::key_name(i % 100),
             workload::make_value(i % 100, i, 100)), ++i;
  }
  kv::Db db2(ns, o);
  sim::ThreadCtx t = make_thread(1);
  ASSERT_TRUE(db2.open(t));
  EXPECT_TRUE(db2.compaction_pending());
  EXPECT_TRUE(db2.background_work(t));
  EXPECT_TRUE(db2.check(t).ok());
}

// ---------------------------------------------------------------------
// Sharded frontend.

TEST(ShardedStore, RoutesAndScansAcrossShards) {
  hw::Platform platform;
  const auto ns =
      workload::ShardedStore::make_namespaces(platform, 3, 32ull << 20);
  workload::ShardOptions so;
  so.kind = workload::StoreKind::kStree;
  workload::ShardedStore store(ns, so);
  sim::ThreadCtx t = make_thread();
  store.create(t);

  std::map<std::string, std::string> model;
  for (int i = 0; i < 120; ++i) {
    const std::string k = workload::key_name(i * 7);
    const std::string v = workload::make_value(i, 0, 40);
    store.put(t, k, v);
    model[k] = v;
  }
  // Point reads route to the owning shard.
  std::string v;
  for (auto& [k, want] : model) {
    ASSERT_TRUE(store.get(t, k, &v)) << k;
    EXPECT_EQ(v, want);
  }
  // Deletions route too.
  EXPECT_TRUE(store.del(t, workload::key_name(0)));
  model.erase(workload::key_name(0));
  EXPECT_FALSE(store.get(t, workload::key_name(0), &v));

  // Scan-merge returns the global key order, not per-shard order.
  const auto rows = store.scan(t, workload::key_name(50), 20);
  auto it = model.lower_bound(workload::key_name(50));
  ASSERT_EQ(rows.size(), 20u);
  for (const auto& [k, val] : rows) {
    ASSERT_NE(it, model.end());
    EXPECT_EQ(k, it->first);
    EXPECT_EQ(val, it->second);
    ++it;
  }
  EXPECT_TRUE(store.check(t).ok());
}

TEST(ShardedStore, BatchedDispatchReachesEveryShard) {
  hw::Platform platform;
  const auto ns =
      workload::ShardedStore::make_namespaces(platform, 4, 32ull << 20);
  workload::ShardOptions so;
  so.kind = workload::StoreKind::kLsmkv;
  so.tuning.write_combine = true;
  workload::ShardedStore store(ns, so);
  sim::ThreadCtx t = make_thread();
  store.create(t);

  std::vector<workload::BatchOp> batch;
  for (int i = 0; i < 64; ++i)
    batch.push_back({workload::key_name(i), workload::make_value(i, 1, 60),
                     false});
  const auto s0 = telemetry::Snapshot::capture(platform);
  store.apply_batch(t, batch);
  t.drain();
  drain_xp_buffers(platform, t.now());
  const auto d = telemetry::Snapshot::capture(platform) - s0;

  // Every shard's DIMM saw writes: the batch fanned out per the router.
  for (unsigned s = 0; s < 4; ++s)
    EXPECT_GT(d.xp[0][s].counters.imc_write_bytes, 0u) << "shard " << s;
  std::string v;
  for (int i = 0; i < 64; ++i)
    EXPECT_TRUE(store.get(t, workload::key_name(i), &v)) << i;
}

TEST(ShardedStore, ReopenRecoversAllShards) {
  hw::Platform platform;
  const auto ns =
      workload::ShardedStore::make_namespaces(platform, 2, 32ull << 20);
  workload::ShardOptions so;
  so.kind = workload::StoreKind::kLsmkv;
  {
    workload::ShardedStore store(ns, so);
    sim::ThreadCtx t = make_thread();
    store.create(t);
    for (int i = 0; i < 50; ++i)
      store.put(t, workload::key_name(i), workload::make_value(i, 0, 50));
  }
  workload::ShardedStore again(ns, so);
  sim::ThreadCtx t = make_thread(1);
  ASSERT_TRUE(again.open(t));
  std::string v;
  for (int i = 0; i < 50; ++i) {
    ASSERT_TRUE(again.get(t, workload::key_name(i), &v)) << i;
    EXPECT_EQ(v, workload::make_value(i, 0, 50));
  }
  EXPECT_TRUE(again.check(t).ok());
}

// ---------------------------------------------------------------------
// Self-healing resilience layer.

// Poison up to `max_lines` nonzero XPLines of the namespace's durable
// image (skipping the first `skip` hits). Targeting nonzero lines
// guarantees the poison lands on live store data, so subsequent reads
// actually trip over it — deterministic and family-agnostic.
unsigned poison_live_lines(hw::PmemNamespace& ns, unsigned max_lines,
                           unsigned stride = 1) {
  std::vector<std::uint8_t> img(ns.size());
  ns.peek(0, img);
  hw::FaultInjector inj(ns.platform());
  unsigned planted = 0, seen = 0;
  for (std::uint64_t off = 0; off + hw::Platform::kXpLineBytes <= img.size();
       off += hw::Platform::kXpLineBytes) {
    bool live = false;
    for (unsigned b = 0; b < hw::Platform::kXpLineBytes && !live; ++b)
      live = img[off + b] != 0;
    if (!live) continue;
    if (seen++ % stride != 0) continue;
    inj.poison(ns, off);
    if (++planted >= max_lines) break;
  }
  return planted;
}

// The default try_* wrappers on a bare adapter (no sharded frontend):
// a poisoned line read surfaces as OpStatus::kMediaError, never as an
// escaped exception, for every store family.
TEST(StoreIface, BareAdaptersReturnTypedMediaErrors) {
  for (const workload::StoreKind kind :
       {workload::StoreKind::kLsmkv, workload::StoreKind::kCmap,
        workload::StoreKind::kStree, workload::StoreKind::kNova}) {
    hw::Platform platform;
    auto& ns = platform.optane(32ull << 20);
    workload::StoreTuning tuning;
    tuning.memtable_bytes = 2 << 10;
    auto store = workload::make_store(kind, ns, tuning);
    sim::ThreadCtx t = make_thread();
    store->create(t);
    for (int i = 0; i < 100; ++i)
      store->put(t, workload::key_name(i), workload::make_value(i, 0, 64));
    store->flush_pending(t);
    ASSERT_GT(poison_live_lines(ns, 30, /*stride=*/2), 0u) << store->name();

    unsigned media = 0;
    for (int i = 0; i < 100; ++i) {
      std::string v;
      const auto r = store->try_get(t, workload::key_name(i), &v);
      if (r.status == workload::OpStatus::kMediaError) ++media;
      if (r.status == workload::OpStatus::kOk) {
        EXPECT_EQ(v, workload::make_value(i, 0, 64)) << store->name();
      }
    }
    EXPECT_GT(media, 0u) << store->name()
                         << ": poison never surfaced as a typed error";
  }
}

// K == 1 (replication off): poisoned data surfaces as typed statuses —
// never an exception, never garbage — the shard walks
// healthy -> degraded -> quarantined, and the in-place salvage path
// returns it to service with bounded, typed loss.
TEST(Resilience, TypedErrorsAndSalvageWithoutReplication) {
  hw::Platform platform;
  const auto ns =
      workload::ShardedStore::make_namespaces(platform, 1, 16ull << 20);
  workload::ShardOptions so;
  so.kind = workload::StoreKind::kLsmkv;
  so.tuning.memtable_bytes = 2 << 10;  // data lives in SSTables, not DRAM
  workload::ShardedStore store(ns, so);
  sim::ThreadCtx t = make_thread();
  store.create(t);

  std::map<std::string, std::string> model;
  for (int i = 0; i < 120; ++i) {
    const std::string k = workload::key_name(i);
    const std::string v = workload::make_value(i, 0, 64);
    store.put(t, k, v);
    model[k] = v;
  }
  store.flush_pending(t);
  ASSERT_GT(poison_live_lines(*ns[0], 24, /*stride=*/3), 0u);

  // Typed read pass: each op ends in a status, and a hit is always the
  // written value (the media model clobbers poisoned lines, so a read
  // that "succeeded" through poison would differ).
  for (auto& [k, want] : model) {
    std::string v;
    const auto r = store.try_get(t, k, &v);
    if (r.status == workload::OpStatus::kOk) {
      EXPECT_EQ(v, want) << k;
    }
  }
  const auto& st = store.resilience();
  EXPECT_GT(st.media_errors, 0u);
  EXPECT_GE(st.quarantined, 1u);

  // Drive the salvage to completion on donated turns.
  for (int turn = 0; turn < 2000 && !store.all_healthy(); ++turn)
    store.background_turn(t);
  ASSERT_TRUE(store.all_healthy());
  EXPECT_GT(store.resilience().lines_healed, 0u);
  EXPECT_GE(store.resilience().recovered, 1u);
  EXPECT_TRUE(store.check(t).ok());

  // Bounded, *typed* loss, never garbage: every key now reads back
  // either its exact value or kDataLoss — never a silent kNotFound
  // (every key was acked through this frontend, so the salvage's loss
  // accounting covers all of them).
  std::uint64_t data_loss = 0;
  for (auto& [k, want] : model) {
    std::string v;
    const auto r = store.try_get(t, k, &v);
    ASSERT_TRUE(r.status == workload::OpStatus::kOk ||
                r.status == workload::OpStatus::kDataLoss)
        << k << " -> " << workload::op_status_name(r.status);
    if (r.status == workload::OpStatus::kOk) {
      EXPECT_EQ(v, want) << k;
    } else {
      ++data_loss;
    }
  }
  EXPECT_EQ(data_loss, store.resilience().keys_lost);
}

// Writer-lane leak regression: a MediaError thrown mid-write (here: the
// inline compaction a put triggers reads a poisoned SSTable) unwinds
// through the per-shard LaneGuard. The issuing thread's write stream
// must be restored after every contained fault — a leaked lane would
// silently misattribute all later traffic to the dead shard's stream.
TEST(Resilience, WriterLaneRestoredAcrossContainedFaults) {
  hw::Platform platform;
  const auto ns =
      workload::ShardedStore::make_namespaces(platform, 2, 16ull << 20);
  workload::ShardOptions so;
  so.kind = workload::StoreKind::kLsmkv;
  so.writer_lanes = true;
  so.tuning.memtable_bytes = 1 << 10;
  so.tuning.write_combine = true;  // the batched LineBatcher path
  workload::ShardedStore store(ns, so);
  sim::ThreadCtx t = make_thread(3);
  store.create(t);
  for (int i = 0; i < 200; ++i)
    store.put(t, workload::key_name(i), workload::make_value(i, 0, 80));
  store.flush_pending(t);
  poison_live_lines(*ns[0], 64);
  poison_live_lines(*ns[1], 64);

  const unsigned own = t.write_stream();
  // Single-key path: every put returns with the lane released, faulted
  // or not.
  for (int i = 0; i < 200; ++i) {
    (void)store.try_put(t, workload::key_name(i),
                        workload::make_value(i, 1, 80));
    ASSERT_EQ(t.write_stream(), own) << "lane leaked at put " << i;
  }
  // Batched cross-shard dispatch: same contract through apply_batch.
  std::vector<workload::BatchOp> batch;
  for (int i = 0; i < 64; ++i)
    batch.push_back({workload::key_name(i), workload::make_value(i, 2, 80),
                     false});
  (void)store.try_apply_batch(t, batch);
  EXPECT_EQ(t.write_stream(), own) << "lane leaked by batched dispatch";
  // The poison actually fired (otherwise this test proves nothing).
  EXPECT_GT(store.resilience().media_errors, 0u);
}

workload::Result run_replicated(unsigned replicas, unsigned* quarantine,
                                workload::ResilienceStats* stats = nullptr,
                                char wl = 'A') {
  hw::Platform platform;
  const auto ns =
      workload::ShardedStore::make_namespaces(platform, 4, 32ull << 20);
  workload::ShardOptions so;
  so.kind = workload::StoreKind::kLsmkv;
  so.replicas = replicas;
  so.tuning.memtable_bytes = 8 << 10;
  workload::ShardedStore store(ns, so);
  workload::Spec spec = workload::ycsb(wl);
  spec.records = 200;
  spec.ops = 400;
  sim::ThreadCtx setup = make_thread(100);
  store.create(setup);
  workload::load(store, spec, setup);
  if (quarantine != nullptr) store.quarantine_shard(setup, *quarantine);
  workload::EngineOptions eo;
  // Single-threaded: replication changes per-op simulated cost, so with
  // several workers it changes the interleaving (and thus which version
  // each read observes). One worker makes the observed-value sequence a
  // pure function of program order — comparable across replica counts.
  eo.threads = 1;
  eo.validate_reads = true;
  eo.background_thread = true;
  const auto r = workload::run(store, spec, eo);
  if (stats != nullptr) *stats = store.resilience();
  return r;
}

// Replication off-path identity: with no faults, a replicas=2 run reads
// the same values as replicas=1 (primary copies serve everything), so
// the engine checksum is identical and every resilience counter is
// zero. This pins "replication changes durability, not results".
TEST(Resilience, ReplicationIsResultInvariantWhenFaultFree) {
  workload::ResilienceStats s1, s2;
  const auto r1 = run_replicated(1, nullptr, &s1);
  const auto r2 = run_replicated(2, nullptr, &s2);
  EXPECT_EQ(r1.checksum, r2.checksum);
  for (const auto* r : {&r1, &r2}) {
    EXPECT_EQ(r->typed_errors, 0u);
    EXPECT_EQ(r->failovers, 0u);
    EXPECT_EQ(r->retries, 0u);
    EXPECT_EQ(r->corruptions, 0u);
  }
  for (const auto* s : {&s1, &s2}) {
    EXPECT_EQ(s->media_errors, 0u);
    EXPECT_EQ(s->degraded + s->quarantined + s->recovered, 0u);
    EXPECT_EQ(s->failover_reads + s->keys_resilvered, 0u);
  }
}

// Replicated-scan identity gate: YCSB E (scan-heavy) must be result-
// invariant across replica counts too. Regression for the capped-scan
// row drop: a physical store co-hosts two logical shards' copies, so a
// per-copy scan capped at n and then filtered could lose target-shard
// rows; the continuation scan keeps each shard's slice exact and the
// merged result identical to the unreplicated frontend's.
TEST(Resilience, ReplicatedScansAreResultInvariant) {
  workload::ResilienceStats s1, s2;
  const auto r1 = run_replicated(1, nullptr, &s1, 'E');
  const auto r2 = run_replicated(2, nullptr, &s2, 'E');
  EXPECT_GT(r1.scans, 0u);
  EXPECT_GT(r1.scanned_items, 0u);
  EXPECT_EQ(r1.checksum, r2.checksum);
  EXPECT_EQ(r1.scanned_items, r2.scanned_items);
  for (const auto* r : {&r1, &r2}) {
    EXPECT_EQ(r->typed_errors, 0u);
    EXPECT_EQ(r->corruptions, 0u);
  }
}

// Deterministic replicated-scan exactness: the merged scan must equal
// the model's first-n slice for every start/n combination, healthy and
// with a quarantined store (failover) — co-hosted copies' smaller keys
// never crowd a shard's rows out, and rows are never silently dropped
// under a kOk status.
TEST(Resilience, ReplicatedScanMatchesModelExactly) {
  hw::Platform platform;
  const auto ns =
      workload::ShardedStore::make_namespaces(platform, 4, 32ull << 20);
  workload::ShardOptions so;
  so.kind = workload::StoreKind::kLsmkv;
  so.replicas = 2;
  so.tuning.memtable_bytes = 8 << 10;
  workload::ShardedStore store(ns, so);
  sim::ThreadCtx t = make_thread();
  store.create(t);
  std::map<std::string, std::string> model;
  for (int i = 0; i < 200; ++i) {
    const std::string k = workload::key_name(i);
    model[k] = workload::make_value(i, 0, 48);
    ASSERT_TRUE(store.try_put(t, k, model[k]).ok());
  }
  store.flush_pending(t);

  auto expect_exact = [&](const std::string& start, std::size_t n) {
    std::vector<std::pair<std::string, std::string>> rows;
    ASSERT_TRUE(store.try_scan(t, start, n, &rows).ok()) << start << " " << n;
    auto it = model.lower_bound(start);
    const std::size_t avail =
        static_cast<std::size_t>(std::distance(it, model.end()));
    ASSERT_EQ(rows.size(), std::min(n, avail)) << start << " " << n;
    for (std::size_t i = 0; i < rows.size(); ++i, ++it) {
      EXPECT_EQ(rows[i].first, it->first) << "start=" << start << " n=" << n;
      EXPECT_EQ(rows[i].second, it->second) << rows[i].first;
    }
  };
  const std::size_t sizes[] = {1, 3, 7, 25, 199, 500};
  for (const std::size_t n : sizes) {
    expect_exact("", n);
    expect_exact(workload::key_name(50), n);
  }

  // Degraded: one store out, every row still exact via the replicas.
  store.quarantine_shard(t, 0);
  for (const std::size_t n : sizes) {
    expect_exact("", n);
    expect_exact(workload::key_name(50), n);
  }
  EXPECT_GT(store.resilience().failover_reads, 0u);
}

// Degraded-mode service: with one of four shards quarantined for the
// whole run, a replicas=2 frontend keeps serving every op (failover
// reads, zero unavailable, zero corruptions) while the rebuild runs on
// the engine's donated background turns.
TEST(Resilience, QuarantinedShardServesThroughReplicas) {
  unsigned q = 0;
  workload::ResilienceStats st;
  const auto r = run_replicated(2, &q, &st);
  EXPECT_EQ(r.ops, 400u);
  EXPECT_EQ(r.corruptions, 0u);
  EXPECT_GT(r.failovers, 0u);
  EXPECT_EQ(st.unavailable, 0u);  // every logical shard kept a live copy
  EXPECT_GE(st.quarantined, 1u);
  EXPECT_GT(r.read_hits, 0u);
}

// Online rebuild end-to-end: quarantine a store under live writes, let
// donated turns scrub/heal/reformat/re-silver/verify it, and require
// the rebuilt store's hosted keyspace to be byte-identical to the
// surviving copies — zero acked writes lost.
TEST(Resilience, RebuildRestoresByteIdenticalKeyspace) {
  hw::Platform platform;
  const auto ns =
      workload::ShardedStore::make_namespaces(platform, 4, 32ull << 20);
  workload::ShardOptions so;
  so.kind = workload::StoreKind::kLsmkv;
  so.replicas = 2;
  so.tuning.memtable_bytes = 4 << 10;
  workload::ShardedStore store(ns, so);
  sim::ThreadCtx t = make_thread();
  store.create(t);

  std::map<std::string, std::string> model;
  for (int i = 0; i < 160; ++i) {
    const std::string k = workload::key_name(i);
    model[k] = workload::make_value(i, 0, 60);
    ASSERT_TRUE(store.try_put(t, k, model[k]).ok());
  }
  store.quarantine_shard(t, 0);
  ASSERT_EQ(store.health(0), workload::ShardHealth::kQuarantined);

  // Writes keep flowing while store 0 is out: updates land on the
  // surviving copies and in store 0's pending set.
  for (int i = 0; i < 160; i += 3) {
    const std::string k = workload::key_name(i);
    model[k] = workload::make_value(i, 1, 60);
    ASSERT_TRUE(store.try_put(t, k, model[k]).ok());
  }
  // Reads never stall: logical shard 0 fails over to store 1.
  for (int i = 0; i < 160; ++i) {
    std::string v;
    const auto r = store.try_get(t, workload::key_name(i), &v);
    ASSERT_TRUE(r.ok()) << i;
    EXPECT_EQ(v, model[workload::key_name(i)]);
  }
  EXPECT_GT(store.resilience().failover_reads, 0u);

  for (int turn = 0; turn < 4000 && !store.all_healthy(); ++turn)
    store.background_turn(t);
  ASSERT_TRUE(store.all_healthy());
  const auto& st = store.resilience();
  EXPECT_EQ(st.recovered, 1u);
  EXPECT_GT(st.keys_resilvered, 0u);
  EXPECT_EQ(st.keys_lost, 0u);
  EXPECT_TRUE(store.check(t).ok());

  // Store 0 hosts logical shards 0 (as primary) and 3 (as replica);
  // read it directly and compare byte-for-byte against the model.
  unsigned hosted = 0;
  for (auto& [k, want] : model) {
    const unsigned s = workload::shard_of(k, 4);
    if (s != 0 && s != 3) continue;
    std::string v;
    ASSERT_TRUE(store.shard(0).get(t, k, &v)) << k;
    EXPECT_EQ(v, want) << k;
    ++hosted;
  }
  EXPECT_GT(hosted, 0u);
  // And the frontend itself still serves the full keyspace exactly.
  for (auto& [k, want] : model) {
    std::string v;
    ASSERT_TRUE(store.try_get(t, k, &v).ok()) << k;
    EXPECT_EQ(v, want) << k;
  }
}

// Telemetry: resilience transitions reach the attached Session and the
// summary grows a "resilience" section; a fault-free run keeps every
// counter at zero and the summary free of the section (byte-identity
// with pre-resilience summaries).
TEST(Resilience, TelemetryCountsTransitionsOnlyWhenTheyHappen) {
  hw::Platform platform;
  const auto ns =
      workload::ShardedStore::make_namespaces(platform, 2, 16ull << 20);
  telemetry::Session session(platform);
  workload::ShardOptions so;
  so.kind = workload::StoreKind::kStree;
  so.replicas = 2;
  workload::ShardedStore store(ns, so);
  sim::ThreadCtx t = make_thread();
  store.create(t);
  for (int i = 0; i < 40; ++i)
    store.put(t, workload::key_name(i), workload::make_value(i, 0, 40));
  EXPECT_EQ(session.summary_json().find("\"resilience\""), std::string::npos);

  store.quarantine_shard(t, 1);
  for (int turn = 0; turn < 2000 && !store.all_healthy(); ++turn)
    store.background_turn(t);
  ASSERT_TRUE(store.all_healthy());
  EXPECT_EQ(
      session.resilience_count(hw::ResilienceEventKind::kQuarantined), 1u);
  EXPECT_EQ(
      session.resilience_count(hw::ResilienceEventKind::kRecovered), 1u);
  EXPECT_GE(
      session.resilience_count(hw::ResilienceEventKind::kResilverKey), 1u);
  EXPECT_NE(session.summary_json().find("\"resilience\""), std::string::npos);
}

}  // namespace
}  // namespace xp
