// Tests for the LATTester sweep runner and kernels, including the
// qualitative shape assertions that anchor the paper's figures.
#include <gtest/gtest.h>

#include "lattester/kernels.h"
#include "lattester/runner.h"
#include "xpsim/platform.h"

namespace xp::lat {
namespace {

using hw::Platform;
using hw::PmemNamespace;

WorkloadSpec base_spec() {
  WorkloadSpec s;
  s.duration = sim::ms(1);
  s.warmup = sim::us(50);
  s.region_size = 32 << 20;
  return s;
}

TEST(Runner, ProducesOpsAndBandwidth) {
  Platform platform;
  PmemNamespace& ns = platform.optane(64 << 20);
  WorkloadSpec s = base_spec();
  s.op = Op::kLoad;
  s.access_size = 256;
  Result r = run(platform, ns, s);
  EXPECT_GT(r.ops, 100u);
  EXPECT_GT(r.bandwidth_gbps, 0.1);
  EXPECT_EQ(r.bytes, r.ops * 256);
}

TEST(Runner, DeterministicForSeed) {
  Platform p1, p2;
  PmemNamespace& ns1 = p1.optane(64 << 20);
  PmemNamespace& ns2 = p2.optane(64 << 20);
  WorkloadSpec s = base_spec();
  s.op = Op::kNtStore;
  s.pattern = Pattern::kRand;
  s.threads = 4;
  Result r1 = run(p1, ns1, s);
  Result r2 = run(p2, ns2, s);
  EXPECT_EQ(r1.ops, r2.ops);
  EXPECT_EQ(r1.bytes, r2.bytes);
  EXPECT_DOUBLE_EQ(r1.bandwidth_gbps, r2.bandwidth_gbps);
}

TEST(Runner, MaxOpsPerThreadRespected) {
  Platform platform;
  PmemNamespace& ns = platform.optane(64 << 20);
  WorkloadSpec s = base_spec();
  s.max_ops_per_thread = 10;
  s.threads = 3;
  s.warmup = 0;
  s.duration = sim::kSecond;
  Result r = run(platform, ns, s);
  EXPECT_EQ(r.ops, 30u);
}

TEST(Runner, ThreadsIncreaseReadBandwidth) {
  Platform platform;
  PmemNamespace& ns = platform.optane(256 << 20);
  WorkloadSpec s = base_spec();
  s.op = Op::kLoad;
  s.access_size = 256;
  s.threads = 1;
  const double bw1 = run(platform, ns, s).bandwidth_gbps;
  s.threads = 8;
  const double bw8 = run(platform, ns, s).bandwidth_gbps;
  EXPECT_GT(bw8, bw1 * 2);
}

TEST(Runner, DelayLowersBandwidth) {
  Platform platform;
  PmemNamespace& ns = platform.optane(64 << 20);
  WorkloadSpec s = base_spec();
  s.op = Op::kLoad;
  const double bw_fast = run(platform, ns, s).bandwidth_gbps;
  s.delay_between_ops = sim::us(1);
  const double bw_slow = run(platform, ns, s).bandwidth_gbps;
  EXPECT_LT(bw_slow * 5, bw_fast);
}


TEST(Runner, StridePatternSkipsXpBufferLocality) {
  // Stride-256 writes touch a fresh XPLine every access (full-line
  // coalescing); stride-4096 also touches a fresh line but spreads over
  // 16x the footprint, thrashing the AIT and buffer reuse less... the
  // essential check: stride == access keeps EWR high, sub-line strides
  // do not apply (stride >= access enforced).
  Platform platform;
  PmemNamespace& ns = platform.optane_ni(512 << 20);
  WorkloadSpec s = base_spec();
  s.op = Op::kNtStore;
  s.pattern = Pattern::kStride;
  s.access_size = 64;
  s.stride = 256;  // one 64 B write per XPLine: worst-case partial lines
  s.region_size = 256 << 20;
  const Result strided = run(platform, ns, s);
  EXPECT_NEAR(strided.ewr, 0.25, 0.05);

  s.pattern = Pattern::kSeq;
  const Result seq = run(platform, ns, s);
  EXPECT_GT(seq.ewr, 0.9);
  EXPECT_GT(seq.bandwidth_gbps, strided.bandwidth_gbps * 2);
}

TEST(Runner, MixedOpRespectsReadFraction) {
  Platform platform;
  PmemNamespace& ns = platform.optane(256 << 20);
  WorkloadSpec s = base_spec();
  s.op = Op::kMixed;
  s.read_fraction = 0.75;
  s.access_size = 256;
  s.pattern = Pattern::kRand;
  const Result r = run(platform, ns, s);
  const auto& c = r.xp_delta;
  // Roughly 3:1 read:write byte ratio at the iMC (reads also fetch for
  // cache fills, so allow slack).
  EXPECT_GT(c.imc_read_bytes, c.imc_write_bytes);
  EXPECT_GT(c.imc_write_bytes, 0u);
}

TEST(Runner, FlushEveryZeroFlushesWholeAccess) {
  Platform platform;
  PmemNamespace& ns = platform.optane(256 << 20);
  WorkloadSpec s = base_spec();
  s.op = Op::kStoreClwb;
  s.flush_every = 0;
  s.access_size = 1024;
  s.fence_each_op = true;
  s.threads = 1;
  const Result r = run(platform, ns, s);
  EXPECT_GT(r.ops, 10u);
  // Everything written was flushed: EWR ~1 for sequential access.
  EXPECT_GT(r.ewr, 0.9);
}

// ---- paper anchors ------------------------------------------------------

TEST(PaperShape, IdleLatencyOrdering) {
  Platform platform;
  PmemNamespace& optane = platform.optane(256 << 20);
  PmemNamespace& dram = platform.dram(256 << 20);

  const IdleLatency xp = idle_latency(platform, optane);
  const IdleLatency dr = idle_latency(platform, dram);

  // Fig 2 orderings: Optane reads 2-3x DRAM; random >> sequential on
  // Optane (~80% gap) but mild on DRAM (~20%); write latencies similar
  // between devices; ntstore costs more than store+clwb.
  EXPECT_GT(xp.read_rand_ns, 2.0 * dr.read_rand_ns);
  EXPECT_GT(xp.read_rand_ns, 1.5 * xp.read_seq_ns);
  EXPECT_LT(dr.read_rand_ns, 1.4 * dr.read_seq_ns);
  EXPECT_GT(xp.write_nt_ns, xp.write_clwb_ns);
  EXPECT_LT(xp.write_clwb_ns, 100.0);
}

TEST(PaperShape, XpBufferProbeCliffAt16K) {
  Platform platform;
  PmemNamespace& ns = platform.optane_ni(64 << 20);
  // Fig 10: inside the buffer capacity (<= 16 KB = 64 lines) second-half
  // writes coalesce: WA ~= 1. Well beyond it, WA -> ~2.
  const double wa_small =
      xpbuffer_write_amp_probe(platform, ns, 4 << 10);
  const double wa_large =
      xpbuffer_write_amp_probe(platform, ns, 256 << 10);
  EXPECT_LT(wa_small, 1.3);
  EXPECT_GT(wa_large, 1.6);
}

TEST(PaperShape, ReadBandwidthAsymmetry) {
  // Single-DIMM max read bandwidth ~2.9x max write bandwidth (§3.4).
  Platform platform;
  PmemNamespace& ns = platform.optane_ni(256 << 20);
  WorkloadSpec s = base_spec();
  s.access_size = 256;
  s.op = Op::kLoad;
  s.threads = 4;
  const double rd = run(platform, ns, s).bandwidth_gbps;
  s.op = Op::kNtStore;
  s.threads = 1;
  const double wr = run(platform, ns, s).bandwidth_gbps;
  EXPECT_GT(rd / wr, 2.0);
  EXPECT_LT(rd / wr, 4.5);
}

TEST(PaperShape, InterleavingScalesBandwidth) {
  Platform platform;
  PmemNamespace& ni = platform.optane_ni(256 << 20);
  PmemNamespace& il = platform.optane(1024ull << 20);
  WorkloadSpec s = base_spec();
  s.op = Op::kLoad;
  s.access_size = 256;
  s.threads = 4;
  const double bw_ni = run(platform, ni, s).bandwidth_gbps;
  s.threads = 16;
  const double bw_il = run(platform, il, s).bandwidth_gbps;
  EXPECT_GT(bw_il / bw_ni, 4.0);
  EXPECT_LT(bw_il / bw_ni, 7.5);
}

TEST(PaperShape, WriteThreadScalingNonMonotonic) {
  // Fig 4 (center): single-DIMM ntstore bandwidth peaks at 1-4 threads
  // and then falls.
  Platform platform;
  PmemNamespace& ns = platform.optane_ni(256 << 20);
  WorkloadSpec s = base_spec();
  s.op = Op::kNtStore;
  s.access_size = 256;
  double best_low = 0, at8 = 0;
  for (unsigned threads : {1u, 2u, 4u}) {
    s.threads = threads;
    best_low = std::max(best_low, run(platform, ns, s).bandwidth_gbps);
  }
  s.threads = 12;
  at8 = run(platform, ns, s).bandwidth_gbps;
  EXPECT_GT(best_low, at8 * 1.1);
}

}  // namespace
}  // namespace xp::lat
