// Tests for Memory Mode: correctness of the near-memory cache, hit/miss
// timing, volatility semantics, and the §6 claim that the DRAM cache
// masks App Direct's small-access pathologies.
#include <gtest/gtest.h>

#include <numeric>
#include <vector>

#include "lattester/runner.h"
#include "xpsim/memory_mode.h"
#include "xpsim/platform.h"

namespace xp::hw {
namespace {

using sim::ThreadCtx;
using sim::Time;

ThreadCtx make_thread(unsigned id = 0) {
  return ThreadCtx({.id = id, .socket = 0, .mlp = 8, .seed = id + 1});
}

std::vector<std::uint8_t> pattern(std::size_t n, unsigned seed) {
  std::vector<std::uint8_t> v(n);
  for (std::size_t i = 0; i < n; ++i)
    v[i] = static_cast<std::uint8_t>(i * 31 + seed + 1);
  return v;
}

TEST(MemoryModeChannel, HitAfterMiss) {
  Timing timing;
  Platform platform(timing);
  MemoryModeChannel& mm = platform.memory_mode_channel(0, 0);
  ThreadCtx t = make_thread();
  EXPECT_EQ(mm.hits(), 0u);
  mm.read64(t.now(), 4096, t.id());
  EXPECT_EQ(mm.misses(), 1u);
  mm.read64(sim::us(1), 4096, t.id());
  EXPECT_EQ(mm.hits(), 1u);
}

TEST(MemoryModeChannel, HitMuchFasterThanMiss) {
  Timing timing;
  Platform platform(timing);
  MemoryModeChannel& mm = platform.memory_mode_channel(0, 0);
  ThreadCtx t = make_thread();
  const Time miss = mm.read64(0, 0, 0);
  const Time t1 = sim::us(10);
  const Time hit = mm.read64(t1, 0, 0) - t1;
  EXPECT_GT(miss, hit * 2);
}

TEST(MemoryModeChannel, ConflictEvictsAndWritesBackDirty) {
  Timing timing;
  Platform platform(timing);
  MemoryModeChannel& mm = platform.memory_mode_channel(0, 0);
  // Two far addresses that map to the same direct-mapped set.
  const std::uint64_t a = 0;
  const std::uint64_t b = mm.sets() * timing.cacheline;  // aliases a
  mm.write64(0, a, 0);                  // dirty in near memory
  const auto xp_before = platform.xp_dimm(0, 0).counters().imc_write_bytes;
  mm.read64(sim::us(1), b, 0);          // conflict: a must be written back
  const auto xp_after = platform.xp_dimm(0, 0).counters().imc_write_bytes;
  EXPECT_GT(xp_after, xp_before);
}

TEST(MemoryMode, DataRoundTrips) {
  Platform platform;
  PmemNamespace& ns = platform.optane_memory_mode(1 << 30);
  ThreadCtx t = make_thread();
  const auto data = pattern(5000, 3);
  ns.store(t, 12345, data);
  std::vector<std::uint8_t> out(5000);
  ns.load(t, 12345, out);
  EXPECT_EQ(out, data);
}

TEST(MemoryMode, ContentsAreVolatile) {
  Platform platform;
  PmemNamespace& ns = platform.optane_memory_mode(1 << 30);
  ThreadCtx t = make_thread();
  const auto data = pattern(64, 1);
  ns.store_persist(t, 0, data);  // even "persisted" data is volatile here
  platform.crash();
  std::vector<std::uint8_t> out(64);
  ns.peek(0, out);
  EXPECT_EQ(std::accumulate(out.begin(), out.end(), 0), 0);
}

TEST(MemoryMode, AppDirectNeighborsUnaffectedByCrash) {
  Platform platform;
  PmemNamespace& volatile_ns = platform.optane_memory_mode(1 << 30);
  PmemNamespace& durable_ns = platform.optane(1 << 30);
  ThreadCtx t = make_thread();
  const auto data = pattern(64, 2);
  volatile_ns.store_persist(t, 0, data);
  durable_ns.store_persist(t, 0, data);
  platform.crash();
  std::vector<std::uint8_t> out(64);
  durable_ns.peek(0, out);
  EXPECT_EQ(out, data);
  volatile_ns.peek(0, out);
  EXPECT_EQ(std::accumulate(out.begin(), out.end(), 0), 0);
}

TEST(MemoryMode, CacheResidentRandomAccessNearDramSpeed) {
  // §6: the DRAM cache masks the small-random-access pathology.
  auto bw = [&](bool memory_mode) {
    Platform platform;
    NamespaceOptions o;
    o.device = Device::kXp;
    o.memory_mode = memory_mode;
    o.size = 4ull << 30;
    o.discard_data = true;
    auto& ns = platform.add_namespace(o);
    lat::WorkloadSpec spec;
    spec.op = lat::Op::kNtStore;
    spec.pattern = lat::Pattern::kRand;
    spec.access_size = 64;
    spec.threads = 4;
    spec.region_size = 64 << 20;
    spec.warmup = sim::ms(1);
    spec.duration = sim::ms(1);
    return lat::run(platform, ns, spec).bandwidth_gbps;
  };
  const double app_direct = bw(false);
  const double memory_mode = bw(true);
  EXPECT_GT(memory_mode, 3 * app_direct);
}


// --------------------------------------------------------------- eADR ---
TEST(Eadr, PlainStoresSurviveCrash) {
  Timing timing;
  timing.eadr = true;
  Platform platform(timing);
  PmemNamespace& ns = platform.optane(1 << 20);
  ThreadCtx t = make_thread();
  const auto data = pattern(64, 7);
  ns.store(t, 0, data);  // no flush, no fence
  platform.crash();
  std::vector<std::uint8_t> out(64);
  ns.peek(0, out);
  EXPECT_EQ(out, data);
}

TEST(Eadr, OffByDefaultStoresStillLost) {
  Platform platform;
  PmemNamespace& ns = platform.optane(1 << 20);
  ThreadCtx t = make_thread();
  ns.store(t, 0, pattern(64, 8));
  platform.crash();
  std::vector<std::uint8_t> out(64);
  ns.peek(0, out);
  EXPECT_EQ(std::accumulate(out.begin(), out.end(), 0), 0);
}

TEST(Eadr, MemoryModeStaysVolatileEvenWithEadr) {
  Timing timing;
  timing.eadr = true;
  Platform platform(timing);
  PmemNamespace& ns = platform.optane_memory_mode(1 << 30);
  ThreadCtx t = make_thread();
  ns.store(t, 0, pattern(64, 9));
  platform.crash();
  std::vector<std::uint8_t> out(64);
  ns.peek(0, out);
  EXPECT_EQ(std::accumulate(out.begin(), out.end(), 0), 0);
}

}  // namespace
}  // namespace xp::hw
