// Tests for the mini-RocksDB: WAL, SSTable, persistent skiplist, and the
// full DB across all three persistence strategies, including crash
// recovery and the Fig 8 strategy-inversion shape.
#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "lsmkv/bloom.h"
#include "lsmkv/db.h"
#include "xpsim/platform.h"

namespace xp::kv {
namespace {

using hw::Platform;
using hw::PmemNamespace;
using sim::ThreadCtx;

ThreadCtx make_thread(unsigned id = 0) {
  return ThreadCtx({.id = id, .socket = 0, .mlp = 8, .seed = id + 1});
}

std::string key_of(int i) {
  char buf[24];
  std::snprintf(buf, sizeof(buf), "key-%012d", i);
  return buf;
}
std::string value_of(int i) {
  std::string v(100, 'v');
  std::snprintf(v.data(), 16, "val-%d", i);
  return v;
}

// ---------------------------------------------------------------- WAL ---
struct WalFixture : ::testing::Test {
  WalFixture()
      : ns(platform.optane(64 << 20)),
        wal(ns, 0, 1 << 20, WalMode::kFlex, opts) {}
  Platform platform;
  PmemNamespace& ns;
  DbOptions opts;
  Wal wal;
};

TEST_F(WalFixture, AppendReplayRoundTrip) {
  ThreadCtx t = make_thread();
  wal.truncate(t);
  wal.append(t, "alpha", "1", false, true);
  wal.append(t, "beta", "2", false, true);
  wal.append(t, "alpha", "", true, true);

  std::vector<std::tuple<std::string, std::string, bool>> got;
  Wal replayer(ns, 0, 1 << 20, WalMode::kFlex, opts);
  replayer.replay(t, [&](std::string_view k, std::string_view v, bool tomb) {
    got.emplace_back(std::string(k), std::string(v), tomb);
  });
  ASSERT_EQ(got.size(), 3u);
  EXPECT_EQ(got[0], std::make_tuple(std::string("alpha"), std::string("1"),
                                    false));
  EXPECT_EQ(got[2], std::make_tuple(std::string("alpha"), std::string(""),
                                    true));
}

TEST_F(WalFixture, TruncateHidesOldRecords) {
  ThreadCtx t = make_thread();
  wal.truncate(t);
  wal.append(t, "old", "x", false, true);
  wal.truncate(t);
  wal.append(t, "new", "y", false, true);

  int count = 0;
  std::string first;
  Wal replayer(ns, 0, 1 << 20, WalMode::kFlex, opts);
  replayer.replay(t, [&](std::string_view k, std::string_view, bool) {
    if (count++ == 0) first = std::string(k);
  });
  EXPECT_EQ(count, 1);
  EXPECT_EQ(first, "new");
}

TEST_F(WalFixture, SyncedRecordsSurviveCrash) {
  ThreadCtx t = make_thread();
  wal.truncate(t);
  wal.append(t, "durable", "yes", false, true);
  platform.crash();
  int count = 0;
  Wal replayer(ns, 0, 1 << 20, WalMode::kFlex, opts);
  replayer.replay(t, [&](std::string_view, std::string_view, bool) {
    ++count;
  });
  EXPECT_EQ(count, 1);
}

TEST_F(WalFixture, PosixModeCostsMoreTime) {
  ThreadCtx t1 = make_thread(1);
  Wal posix(ns, 8 << 20, 1 << 20, WalMode::kPosix, opts);
  posix.truncate(t1);
  const sim::Time p0 = t1.now();
  for (int i = 0; i < 100; ++i) posix.append(t1, key_of(i), value_of(i),
                                             false, true);
  const sim::Time posix_time = t1.now() - p0;

  ThreadCtx t2 = make_thread(2);
  Wal flex(ns, 16 << 20, 1 << 20, WalMode::kFlex, opts);
  flex.truncate(t2);
  const sim::Time f0 = t2.now();
  for (int i = 0; i < 100; ++i) flex.append(t2, key_of(i), value_of(i),
                                            false, true);
  const sim::Time flex_time = t2.now() - f0;

  EXPECT_GT(posix_time, flex_time);
}

// ------------------------------------------------------------- SSTable --
TEST(SsTableTest, BuildAndGet) {
  Platform platform;
  PmemNamespace& ns = platform.optane(64 << 20);
  ThreadCtx t = make_thread();
  std::vector<SsTable::Entry> entries;
  for (int i = 0; i < 100; ++i)
    entries.push_back({key_of(i), value_of(i), false});
  const std::uint64_t size = SsTable::build(t, ns, 4096, entries);
  EXPECT_EQ(size, SsTable::encoded_size(entries));
  EXPECT_EQ(SsTable::count(t, ns, 4096), 100u);

  std::string v;
  EXPECT_EQ(SsTable::get(t, ns, 4096, key_of(50), &v), FindResult::kFound);
  EXPECT_EQ(v, value_of(50));
  EXPECT_EQ(SsTable::get(t, ns, 4096, key_of(0), &v), FindResult::kFound);
  EXPECT_EQ(SsTable::get(t, ns, 4096, key_of(99), &v), FindResult::kFound);
  EXPECT_EQ(SsTable::get(t, ns, 4096, "missing", &v),
            FindResult::kNotFound);
}

TEST(SsTableTest, TombstonesReported) {
  Platform platform;
  PmemNamespace& ns = platform.optane(64 << 20);
  ThreadCtx t = make_thread();
  std::vector<SsTable::Entry> entries{{key_of(1), "", true},
                                      {key_of(2), "live", false}};
  SsTable::build(t, ns, 0, entries);
  std::string v;
  EXPECT_EQ(SsTable::get(t, ns, 0, key_of(1), &v), FindResult::kTombstone);
  EXPECT_EQ(SsTable::get(t, ns, 0, key_of(2), &v), FindResult::kFound);
}

TEST(SsTableTest, ForEachIteratesInOrder) {
  Platform platform;
  PmemNamespace& ns = platform.optane(64 << 20);
  ThreadCtx t = make_thread();
  std::vector<SsTable::Entry> entries;
  for (int i = 0; i < 20; ++i) entries.push_back({key_of(i), value_of(i),
                                                  false});
  SsTable::build(t, ns, 0, entries);
  std::vector<std::string> keys;
  SsTable::for_each(t, ns, 0,
                    [&](std::string_view k, std::string_view, bool) {
                      keys.emplace_back(k);
                    });
  ASSERT_EQ(keys.size(), 20u);
  EXPECT_TRUE(std::is_sorted(keys.begin(), keys.end()));
}

TEST(SsTableTest, SurvivesCrash) {
  Platform platform;
  PmemNamespace& ns = platform.optane(64 << 20);
  ThreadCtx t = make_thread();
  std::vector<SsTable::Entry> entries{{key_of(7), value_of(7), false}};
  SsTable::build(t, ns, 0, entries);
  platform.crash();
  std::string v;
  EXPECT_EQ(SsTable::get(t, ns, 0, key_of(7), &v), FindResult::kFound);
  EXPECT_EQ(v, value_of(7));
}


// ------------------------------------------------------------- bloom ----
TEST(Bloom, NoFalseNegatives) {
  BloomBuilder b(1000);
  for (int i = 0; i < 1000; ++i) b.add(key_of(i));
  for (int i = 0; i < 1000; ++i)
    EXPECT_TRUE(BloomBuilder::may_contain(b.bits().data(), b.bits().size(),
                                          key_of(i)))
        << i;
}

TEST(Bloom, LowFalsePositiveRate) {
  BloomBuilder b(1000);
  for (int i = 0; i < 1000; ++i) b.add(key_of(i));
  int fp = 0;
  for (int i = 1000; i < 11000; ++i)
    fp += BloomBuilder::may_contain(b.bits().data(), b.bits().size(),
                                    key_of(i));
  EXPECT_LT(fp, 300);  // < 3% at 10 bits/key
}

TEST(Bloom, EmptyFilterCannotExclude) {
  EXPECT_TRUE(BloomBuilder::may_contain(nullptr, 0, "anything"));
}

TEST(SsTableTest, BloomSkipsAbsentKeyProbes) {
  Platform platform;
  PmemNamespace& ns = platform.optane(64 << 20);
  ThreadCtx t = make_thread();
  std::vector<SsTable::Entry> entries;
  for (int i = 0; i < 2000; ++i)
    entries.push_back({key_of(i), value_of(i), false});
  SsTable::build(t, ns, 0, entries);

  // Absent-key lookups should cost far less simulated time than present-
  // key lookups: the bloom filter (cache-resident after warmup) replaces
  // the ~11-probe binary search.
  std::string v;
  for (int i = 0; i < 50; ++i)  // warm the filter into the CPU cache
    SsTable::get(t, ns, 0, key_of(100000 + i), &v);
  const sim::Time a0 = t.now();
  for (int i = 0; i < 200; ++i)
    EXPECT_EQ(SsTable::get(t, ns, 0, key_of(200000 + i), &v),
              FindResult::kNotFound);
  const sim::Time absent = t.now() - a0;
  const sim::Time p0 = t.now();
  for (int i = 0; i < 200; ++i)
    EXPECT_EQ(SsTable::get(t, ns, 0, key_of(i * 7 % 2000), &v),
              FindResult::kFound);
  const sim::Time present = t.now() - p0;
  EXPECT_LT(absent * 3, present);
}

// ---------------------------------------------------- persistent skiplist
struct PSkipFixture : ::testing::Test {
  PSkipFixture() : ns(platform.optane(256 << 20)), pool(ns) {
    ThreadCtx t = make_thread();
    pool.create(t, 64);
    list = std::make_unique<PSkiplist>(pool, pool.root(t));
    list->create(t);
  }
  Platform platform;
  PmemNamespace& ns;
  pmem::Pool pool;
  std::unique_ptr<PSkiplist> list;
};

TEST_F(PSkipFixture, PutGet) {
  ThreadCtx t = make_thread();
  list->put(t, "k1", "v1", false);
  list->put(t, "k2", "v2", false);
  std::string v;
  EXPECT_EQ(list->get(t, "k1", &v), FindResult::kFound);
  EXPECT_EQ(v, "v1");
  EXPECT_EQ(list->get(t, "nope", &v), FindResult::kNotFound);
}

TEST_F(PSkipFixture, NewestVersionWins) {
  ThreadCtx t = make_thread();
  list->put(t, "k", "old", false);
  list->put(t, "k", "new", false);
  std::string v;
  EXPECT_EQ(list->get(t, "k", &v), FindResult::kFound);
  EXPECT_EQ(v, "new");
}

TEST_F(PSkipFixture, TombstoneShadows) {
  ThreadCtx t = make_thread();
  list->put(t, "k", "v", false);
  list->put(t, "k", "", true);
  std::string v;
  EXPECT_EQ(list->get(t, "k", &v), FindResult::kTombstone);
}

TEST_F(PSkipFixture, SortedDedupedIteration) {
  ThreadCtx t = make_thread();
  for (int i = 9; i >= 0; --i) list->put(t, key_of(i), value_of(i), false);
  list->put(t, key_of(5), "updated", false);
  std::vector<std::string> keys;
  std::string v5;
  list->for_each(t, [&](std::string_view k, std::string_view v, bool) {
    keys.emplace_back(k);
    if (k == key_of(5)) v5 = std::string(v);
  });
  ASSERT_EQ(keys.size(), 10u);
  EXPECT_TRUE(std::is_sorted(keys.begin(), keys.end()));
  EXPECT_EQ(v5, "updated");
}

TEST_F(PSkipFixture, InsertsSurviveCrashWithoutLog) {
  ThreadCtx t = make_thread();
  for (int i = 0; i < 50; ++i) list->put(t, key_of(i), value_of(i), false);
  platform.crash();

  pmem::Pool reopened(ns);
  ASSERT_TRUE(reopened.open(t));
  PSkiplist recovered(reopened, reopened.root(t));
  recovered.open(t);
  std::string v;
  for (int i = 0; i < 50; ++i) {
    EXPECT_EQ(recovered.get(t, key_of(i), &v), FindResult::kFound) << i;
    EXPECT_EQ(v, value_of(i));
  }
}

TEST_F(PSkipFixture, FootprintCountsEntries) {
  ThreadCtx t = make_thread();
  for (int i = 0; i < 10; ++i) list->put(t, key_of(i), value_of(i), false);
  const auto fp = list->footprint(t);
  EXPECT_EQ(fp.entries, 10u);
  EXPECT_EQ(fp.bytes, 10 * (key_of(0).size() + 100));
}

// -------------------------------------------------------------- full DB --
struct DbParam {
  WalMode wal;
  MemtableMode memtable;
  const char* name;
};

class DbModes : public ::testing::TestWithParam<DbParam> {
 protected:
  DbOptions make_opts() const {
    DbOptions o;
    o.wal = GetParam().wal;
    o.memtable = GetParam().memtable;
    o.memtable_bytes = 16 << 10;  // small so flush/compaction paths run
    return o;
  }
};

TEST_P(DbModes, PutGetAcrossFlushesAndCompactions) {
  Platform platform;
  PmemNamespace& ns = platform.optane(256 << 20);
  ThreadCtx t = make_thread();
  Db db(ns, make_opts());
  db.create(t);
  const int n = 1000;
  for (int i = 0; i < n; ++i) db.put(t, key_of(i), value_of(i));
  EXPECT_GT(db.stats().memtable_flushes, 2u);
  std::string v;
  for (int i = 0; i < n; ++i) {
    ASSERT_TRUE(db.get(t, key_of(i), &v)) << i;
    EXPECT_EQ(v, value_of(i));
  }
  EXPECT_FALSE(db.get(t, "absent", &v));
}

TEST_P(DbModes, OverwriteReturnsLatest) {
  Platform platform;
  PmemNamespace& ns = platform.optane(256 << 20);
  ThreadCtx t = make_thread();
  Db db(ns, make_opts());
  db.create(t);
  for (int round = 0; round < 3; ++round)
    for (int i = 0; i < 300; ++i)
      db.put(t, key_of(i), value_of(i + round * 1000));
  std::string v;
  for (int i = 0; i < 300; ++i) {
    ASSERT_TRUE(db.get(t, key_of(i), &v));
    EXPECT_EQ(v, value_of(i + 2000));
  }
}

TEST_P(DbModes, DeleteShadowsOlderVersions) {
  Platform platform;
  PmemNamespace& ns = platform.optane(256 << 20);
  ThreadCtx t = make_thread();
  Db db(ns, make_opts());
  db.create(t);
  for (int i = 0; i < 400; ++i) db.put(t, key_of(i), value_of(i));
  for (int i = 0; i < 400; i += 2) db.del(t, key_of(i));
  std::string v;
  for (int i = 0; i < 400; ++i) {
    EXPECT_EQ(db.get(t, key_of(i), &v), i % 2 == 1) << i;
  }
}

TEST_P(DbModes, CrashRecoveryKeepsSyncedWrites) {
  Platform platform;
  PmemNamespace& ns = platform.optane(256 << 20);
  ThreadCtx t = make_thread();
  {
    Db db(ns, make_opts());
    db.create(t);
    for (int i = 0; i < 500; ++i) db.put(t, key_of(i), value_of(i));
    platform.crash();
  }
  Db db2(ns, make_opts());
  ASSERT_TRUE(db2.open(t));
  std::string v;
  for (int i = 0; i < 500; ++i) {
    ASSERT_TRUE(db2.get(t, key_of(i), &v)) << i;
    EXPECT_EQ(v, value_of(i));
  }
}


// ------------------------------------------------------------------ scan
TEST_P(DbModes, ScanMergesAllLevels) {
  Platform platform;
  PmemNamespace& ns = platform.optane(256 << 20);
  ThreadCtx t = make_thread();
  Db db(ns, make_opts());
  db.create(t);
  for (int i = 0; i < 500; ++i) db.put(t, key_of(i), value_of(i));
  db.put(t, key_of(100), "fresh");  // newer version in the memtable
  db.del(t, key_of(101));

  const auto rows = db.scan(t, key_of(99), 5);
  ASSERT_EQ(rows.size(), 5u);
  EXPECT_EQ(rows[0].first, key_of(99));
  EXPECT_EQ(rows[1].first, key_of(100));
  EXPECT_EQ(rows[1].second, "fresh");
  EXPECT_EQ(rows[2].first, key_of(102));  // 101 deleted
  EXPECT_EQ(rows[3].first, key_of(103));
}

TEST_P(DbModes, ScanFromBeyondEndIsEmpty) {
  Platform platform;
  PmemNamespace& ns = platform.optane(256 << 20);
  ThreadCtx t = make_thread();
  Db db(ns, make_opts());
  db.create(t);
  db.put(t, key_of(1), value_of(1));
  EXPECT_TRUE(db.scan(t, "zzzz", 10).empty());
}

INSTANTIATE_TEST_SUITE_P(
    Strategies, DbModes,
    ::testing::Values(
        DbParam{WalMode::kPosix, MemtableMode::kVolatile, "posix"},
        DbParam{WalMode::kFlex, MemtableMode::kVolatile, "flex"},
        DbParam{WalMode::kNone, MemtableMode::kPersistent, "pskip"}),
    [](const auto& info) { return info.param.name; });

// ---- Fig 8 anchor -------------------------------------------------------
double set_throughput(hw::Device device, WalMode wal, MemtableMode mem) {
  Platform platform;
  PmemNamespace& ns = device == hw::Device::kXp
                          ? platform.optane(512 << 20)
                          : platform.dram(512 << 20);
  ThreadCtx t = make_thread();
  DbOptions o;
  o.wal = wal;
  o.memtable = mem;
  Db db(ns, o);
  db.create(t);
  const int n = 3000;
  const sim::Time t0 = t.now();
  for (int i = 0; i < n; ++i) db.put(t, key_of(i * 7919 % 100000),
                                     value_of(i));
  return n / sim::to_s(t.now() - t0);
}

TEST(Fig8Shape, StrategyInversionBetweenDramAndOptane) {
  const double dram_flex = set_throughput(
      hw::Device::kDram, WalMode::kFlex, MemtableMode::kVolatile);
  const double dram_pskip = set_throughput(
      hw::Device::kDram, WalMode::kNone, MemtableMode::kPersistent);
  const double xp_flex = set_throughput(
      hw::Device::kXp, WalMode::kFlex, MemtableMode::kVolatile);
  const double xp_pskip = set_throughput(
      hw::Device::kXp, WalMode::kNone, MemtableMode::kPersistent);

  // Paper Fig 8: on DRAM the persistent memtable wins; on real Optane the
  // conclusion inverts and FLEX wins.
  EXPECT_GT(dram_pskip, dram_flex);
  EXPECT_GT(xp_flex, xp_pskip);
}

}  // namespace
}  // namespace xp::kv
