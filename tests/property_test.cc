// Cross-module property tests.
//
//  * Persistence oracle: a random program of stores/ntstores/flushes/
//    fences against a reference model that tracks exactly which bytes are
//    durable; after a crash the platform must agree byte-for-byte.
//  * Concurrent transactions in separate lanes roll back independently.
//  * LineBatcher / LineReader round-trips: batched line-granular writes
//    and reads are byte-identical to plain store/load sequences on
//    randomized offset/size programs.
//  * End-to-end determinism: identical seeds give identical simulations.
#include <gtest/gtest.h>

#include <cstring>
#include <vector>

#include "lattester/runner.h"
#include "pmemlib/linebatch.h"
#include "pmemlib/linereader.h"
#include "pmemlib/readcache.h"
#include "pmemlib/pool.h"
#include "sim/scheduler.h"
#include "telemetry/registry.h"
#include "telemetry/session.h"
#include "xpsim/fault.h"
#include "xpsim/platform.h"

namespace xp {
namespace {

using hw::Platform;
using hw::PmemNamespace;
using sim::ThreadCtx;

// --------------------------------------------------- persistence oracle --
// The region is kept far smaller than the LLC so no natural evictions
// occur: a plain store is durable if and only if it was clwb'd/clflushed
// (or written with ntstore) before the crash. The oracle maintains both
// the volatile view and the durable view.
class PersistenceOracle : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(PersistenceOracle, CrashStateMatchesReference) {
  constexpr std::uint64_t kRegion = 64 << 10;
  Platform platform;
  PmemNamespace& ns = platform.optane(1 << 20);
  ThreadCtx t({.id = 0, .socket = 0, .mlp = 8, .seed = 77});
  sim::Rng rng(GetParam());

  std::vector<std::uint8_t> volatile_ref(kRegion, 0);
  std::vector<std::uint8_t> durable_ref(kRegion, 0);
  // Per-line dirty flags in the reference cache model.
  std::vector<bool> line_dirty(kRegion / 64, false);

  for (int op = 0; op < 300; ++op) {
    const unsigned kind = static_cast<unsigned>(rng.uniform(5));
    const std::size_t len = 1 + rng.uniform(300);
    const std::uint64_t off = rng.uniform(kRegion - len);
    std::vector<std::uint8_t> data(len);
    for (auto& b : data) b = static_cast<std::uint8_t>(rng.next());

    switch (kind) {
      case 0:
      case 1: {  // cached store: volatile until flushed
        ns.store(t, off, data);
        std::memcpy(volatile_ref.data() + off, data.data(), len);
        for (std::uint64_t l = off / 64; l <= (off + len - 1) / 64; ++l)
          line_dirty[l] = true;
        break;
      }
      case 2: {  // ntstore: durable at the fence; we fence immediately
        ns.ntstore_persist(t, off, data);
        // An ntstore invalidates any dirty cached copy of the touched
        // lines, which writes the *whole line's* pending data back first
        // (write-back-invalidate), then the non-temporal bytes land.
        for (std::uint64_t l = off / 64; l <= (off + len - 1) / 64; ++l) {
          if (line_dirty[l]) {
            std::memcpy(durable_ref.data() + l * 64,
                        volatile_ref.data() + l * 64, 64);
            line_dirty[l] = false;
          }
        }
        std::memcpy(volatile_ref.data() + off, data.data(), len);
        std::memcpy(durable_ref.data() + off, data.data(), len);
        break;
      }
      case 3: {  // clwb of a random range + fence
        const std::size_t flen = 1 + rng.uniform(600);
        const std::uint64_t foff = rng.uniform(kRegion - flen);
        ns.persist(t, foff, flen);
        for (std::uint64_t l = foff / 64; l <= (foff + flen - 1) / 64;
             ++l) {
          if (line_dirty[l]) {
            std::memcpy(durable_ref.data() + l * 64,
                        volatile_ref.data() + l * 64, 64);
            line_dirty[l] = false;
          }
        }
        break;
      }
      case 4: {  // volatile read-back must always match
        std::vector<std::uint8_t> out(len);
        ns.load(t, off, out);
        ASSERT_EQ(0, std::memcmp(out.data(), volatile_ref.data() + off,
                                 len))
            << "volatile mismatch at op " << op;
        break;
      }
    }
  }

  platform.crash();
  std::vector<std::uint8_t> image(kRegion);
  ns.peek(0, image);
  ASSERT_EQ(0, std::memcmp(image.data(), durable_ref.data(), kRegion))
      << "durable image diverged from the oracle";
}

INSTANTIATE_TEST_SUITE_P(Seeds, PersistenceOracle,
                         ::testing::Values(1, 2, 3, 5, 8, 13, 21, 34));

// ------------------------------------------- eviction-regime oracle -----
// The exact-durability oracle above only holds while the working set fits
// in the LLC. Here the region is 4x the (shrunken) LLC, so dirty lines
// are written back by natural evictions the program never asked for. The
// contract weakens to a superset rule: the durable image may be *ahead*
// of the explicitly-flushed state (evictions persist data early) but
// never behind it, and every line must hold a value the program actually
// wrote — no tearing within a 64 B line, no made-up data.
//
// Each store overwrites a whole line with an encoded (line, version)
// payload; `flushed_floor` records the version at the last explicit
// persist. After the crash each durable line must decode to a version in
// [flushed_floor, latest].
class EvictionOracle : public ::testing::TestWithParam<std::uint64_t> {};

namespace {
void encode_line(std::uint64_t line, std::uint32_t ver,
                 std::uint8_t out[64]) {
  const std::uint64_t tag = (line << 32) | ver;
  std::memcpy(out, &tag, 8);
  for (int i = 8; i < 64; ++i)
    out[i] = static_cast<std::uint8_t>(line * 131 + ver * 31 + i * 7);
}
}  // namespace

TEST_P(EvictionOracle, DurableSetIsSupersetOfFlushedSet) {
  hw::Timing timing;
  timing.llc_lines = 1024;  // 64 KB LLC so evictions happen fast
  Platform platform(timing, /*seed=*/42);
  PmemNamespace& ns = platform.optane(1 << 20);
  ThreadCtx t({.id = 0, .socket = 0, .mlp = 8, .seed = 77});
  sim::Rng rng(GetParam());

  constexpr std::uint64_t kLines = 4096;  // 256 KB region = 4x the LLC
  std::vector<std::uint32_t> latest(kLines, 0);
  std::vector<std::uint32_t> flushed_floor(kLines, 0);

  for (int op = 0; op < 20000; ++op) {
    const std::uint64_t line = rng.uniform(kLines);
    if (rng.uniform(8) == 0) {  // explicit clwb + fence: raise the floor
      ns.persist(t, line * 64, 64);
      flushed_floor[line] = latest[line];
    } else {  // full-line store, volatile until flushed or evicted
      std::uint8_t buf[64];
      encode_line(line, ++latest[line], buf);
      ns.store(t, line * 64, buf);
    }
  }
  ASSERT_GT(platform.cache_counters(0).natural_evictions, 0u)
      << "working set did not overflow the LLC; test is vacuous";

  platform.crash();
  std::vector<std::uint8_t> image(kLines * 64);
  ns.peek(0, image);
  for (std::uint64_t line = 0; line < kLines; ++line) {
    const std::uint8_t* got = image.data() + line * 64;
    std::uint64_t tag;
    std::memcpy(&tag, got, 8);
    if (tag == 0) {  // never persisted: only legal if nothing was flushed
      ASSERT_EQ(flushed_floor[line], 0u)
          << "line " << line << ": flushed data lost";
      continue;
    }
    const std::uint64_t enc_line = tag >> 32;
    const std::uint32_t ver = static_cast<std::uint32_t>(tag);
    ASSERT_EQ(enc_line, line) << "line " << line << ": foreign payload";
    ASSERT_GE(ver, flushed_floor[line])
        << "line " << line << ": durable image behind the flushed floor";
    ASSERT_LE(ver, latest[line])
        << "line " << line << ": durable version never written";
    std::uint8_t want[64];
    encode_line(line, ver, want);
    ASSERT_EQ(0, std::memcmp(got, want, 64))
        << "line " << line << ": torn line at version " << ver;
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, EvictionOracle,
                         ::testing::Values(7, 11, 19));

// ------------------------------------------------- multi-lane txs -------
TEST(TxLanes, ConcurrentTransactionsRollBackIndependently) {
  Platform platform;
  PmemNamespace& ns = platform.optane(64 << 20);
  ThreadCtx setup({.id = 0, .socket = 0, .mlp = 8, .seed = 1});
  pmem::Pool pool(ns);
  pool.create(setup, 256);
  const std::uint64_t root = pool.root(setup);
  for (int slot = 0; slot < 4; ++slot)
    pmem::store_persist_pod(setup, ns, root + slot * 8,
                            std::uint64_t(slot + 1));

  // Two sim threads (distinct lanes): thread A commits, thread B crashes
  // mid-transaction.
  ThreadCtx ta({.id = 0, .socket = 0, .mlp = 8, .seed = 2});
  ThreadCtx tb({.id = 1, .socket = 0, .mlp = 8, .seed = 3});
  {
    pmem::Tx txa(pool, ta);
    pmem::Tx txb(pool, tb);
    ASSERT_NE(txa.lane(), txb.lane());
    const std::uint64_t a_new = 100, b_new = 200;
    txa.add(root, 8);
    txa.store(root, std::span<const std::uint8_t>(
                        reinterpret_cast<const std::uint8_t*>(&a_new), 8));
    txb.add(root + 8, 8);
    txb.store(root + 8, std::span<const std::uint8_t>(
                            reinterpret_cast<const std::uint8_t*>(&b_new),
                            8));
    txa.commit();
    platform.crash();
    txb.release();  // process died mid-transaction
  }
  pmem::Pool recovered(ns);
  ASSERT_TRUE(recovered.open(setup));
  EXPECT_EQ(ns.load_pod<std::uint64_t>(setup, root), 100u);      // committed
  EXPECT_EQ(ns.load_pod<std::uint64_t>(setup, root + 8), 2u);    // rolled back
  EXPECT_EQ(ns.load_pod<std::uint64_t>(setup, root + 16), 3u);   // untouched
}

// ------------------------------------------- conservation oracle --------
// Random programs through the full namespace API (stores, ntstores,
// flushes, loads, a crash) with a telemetry session attached. Checks
// that (a) the byte-conservation laws hold on the final snapshot, (b)
// the session's event histograms agree exactly with the hardware
// counters, and (c) observing did not change what became durable — the
// post-crash image is byte-identical to an unobserved twin run.
class ConservationOracle : public ::testing::TestWithParam<std::uint64_t> {
};

TEST_P(ConservationOracle, ObservedRunConservesAndMatchesUnobserved) {
  constexpr std::uint64_t kRegion = 128 << 10;
  auto run_program = [&](PmemNamespace& ns) {
    ThreadCtx t({.id = 0, .socket = 0, .mlp = 8, .seed = 5});
    sim::Rng rng(GetParam());
    // Combined reads through a DRAM line cache interleave with the raw
    // stores/loads: the conservation laws below must keep holding with
    // the read-path layer in play (cache hits are DRAM-only and add no
    // DIMM traffic to account for).
    pmem::ReadCache rcache(ns, {.capacity_lines = 128});
    pmem::LineReader reader;
    reader.attach_cache(&rcache);
    for (int op = 0; op < 1500; ++op) {
      const std::size_t len = 1 + rng.uniform(400);
      const std::uint64_t off = rng.uniform(kRegion - len);
      std::vector<std::uint8_t> data(len);
      for (auto& b : data) b = static_cast<std::uint8_t>(rng.next());
      switch (rng.uniform(5)) {
        case 0:
          ns.ntstore_persist(t, off, data);
          break;
        case 1:
          ns.store(t, off, data);
          break;
        case 2:
          ns.store_persist(t, off, data);
          break;
        case 3: {
          std::vector<std::uint8_t> out(len);
          ns.load(t, off, out);
          break;
        }
        case 4:
          reader.discard();  // stores above may have hit the staged span
          reader.fetch(t, ns, off, len);
          break;
      }
    }
  };

  Platform observed(hw::Timing{}, /*seed=*/9);
  telemetry::Session session(observed);
  PmemNamespace& ns_obs = observed.optane(1 << 20);
  run_program(ns_obs);

  const telemetry::Snapshot snap = telemetry::Snapshot::capture(observed);
  const hw::XpCounters c = snap.xp_total();
  const hw::Timing& tm = observed.timing();
  ASSERT_GT(c.media_write_bytes, 0u);
  EXPECT_EQ(c.media_write_bytes,
            tm.xpline * (c.evictions_full + c.evictions_partial +
                         c.wear_migrations));
  EXPECT_EQ(c.media_read_bytes,
            tm.xpline * (c.buffer_miss_reads + c.evictions_partial +
                         c.wear_migrations));
  EXPECT_EQ(c.imc_read_bytes,
            tm.cacheline * (c.buffer_hit_reads + c.buffer_miss_reads));

  // The read laws must also hold per DIMM (ERR is reported per DIMM), and
  // the ERR accessor must agree with the raw byte ratio everywhere.
  for (unsigned s = 0; s < snap.sockets(); ++s)
    for (unsigned ch = 0; ch < snap.channels(); ++ch) {
      const hw::XpCounters& d = snap.xp[s][ch].counters;
      EXPECT_EQ(d.media_read_bytes,
                tm.xpline * (d.buffer_miss_reads + d.evictions_partial +
                             d.wear_migrations))
          << "dimm (" << s << "," << ch << ")";
      EXPECT_EQ(d.imc_read_bytes,
                tm.cacheline * (d.buffer_hit_reads + d.buffer_miss_reads))
          << "dimm (" << s << "," << ch << ")";
      if (d.imc_read_bytes > 0) {
        EXPECT_DOUBLE_EQ(d.err(), static_cast<double>(d.media_read_bytes) /
                                      static_cast<double>(d.imc_read_bytes));
      }
    }

  std::uint64_t histo = 0;
  for (unsigned k = 0; k < hw::kPersistEventKinds; ++k)
    histo += session.persist_count(static_cast<hw::PersistEventKind>(k));
  EXPECT_EQ(histo, observed.persist_events());
  EXPECT_EQ(session.eviction_count(hw::EvictKind::kFull) +
                session.eviction_count(hw::EvictKind::kRewrite),
            c.evictions_full);
  EXPECT_EQ(session.eviction_count(hw::EvictKind::kPartial),
            c.evictions_partial);
  EXPECT_EQ(session.ait_miss_count(), c.ait_misses);

  Platform unobserved(hw::Timing{}, /*seed=*/9);
  PmemNamespace& ns_un = unobserved.optane(1 << 20);
  run_program(ns_un);
  EXPECT_EQ(unobserved.persist_events(), observed.persist_events());

  observed.crash();
  unobserved.crash();
  std::vector<std::uint8_t> img_obs(kRegion), img_un(kRegion);
  ns_obs.peek(0, img_obs);
  ns_un.peek(0, img_un);
  ASSERT_EQ(0, std::memcmp(img_obs.data(), img_un.data(), kRegion))
      << "telemetry changed the durable image";
}

INSTANTIATE_TEST_SUITE_P(Seeds, ConservationOracle,
                         ::testing::Values(23, 29, 31, 37));

// ------------------------------------------------ poison-shadow oracle --
// Random interleaving of 256 B-aligned ntstores, poison injections, ECC
// transients, loads, and scrubs against a shadow model that tracks which
// XPLines are poisoned and what the durable bytes of every healthy line
// are. Invariants at every step:
//  * a timed load of a poisoned line throws MediaError; a load of a
//    healthy tracked line returns exactly the reference bytes;
//  * a full-XPLine ntstore heals the line (poison clears, bytes known);
//  * ARS reports exactly the shadow's poison set, sorted.
// After a final crash the durable image of every healthy tracked line
// must match the reference byte-for-byte.
class PoisonShadowOracle : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(PoisonShadowOracle, ShadowModelAgreesAtEveryStep) {
  constexpr std::uint64_t kLineBytes = Platform::kXpLineBytes;
  constexpr std::uint64_t kLines = 256;  // 64 KB region
  Platform platform;
  PmemNamespace& ns = platform.optane(1 << 20);
  ThreadCtx t({.id = 0, .socket = 0, .mlp = 8, .seed = 77});
  hw::FaultInjector injector(platform, GetParam());
  sim::Rng rng(GetParam() * 0x9e3779b97f4a7c15ULL + 1);

  std::vector<std::uint8_t> ref(kLines * kLineBytes, 0);
  std::vector<bool> poisoned(kLines, false);
  // Lines whose full contents the shadow knows (never poisoned, or healed
  // by a full-line rewrite since). Poison clobbers a line with garbage
  // the model does not predict, so such lines are only membership-checked.
  std::vector<bool> known(kLines, true);

  for (int op = 0; op < 2000; ++op) {
    const std::uint64_t line = rng.uniform(kLines);
    const std::uint64_t off = line * kLineBytes;
    switch (rng.uniform(8)) {
      case 0:
      case 1:
      case 2: {  // full-line ntstore: heals and (re)defines the line
        std::vector<std::uint8_t> data(kLineBytes);
        for (auto& b : data) b = static_cast<std::uint8_t>(rng.next());
        ns.ntstore_persist(t, off, data);
        std::memcpy(ref.data() + off, data.data(), kLineBytes);
        poisoned[line] = false;
        known[line] = true;
        break;
      }
      case 3: {  // sub-line ntstore: updates bytes, cannot heal
        std::vector<std::uint8_t> data(64);
        for (auto& b : data) b = static_cast<std::uint8_t>(rng.next());
        const std::uint64_t sub = rng.uniform(4) * 64;
        ns.ntstore_persist(t, off + sub, data);
        std::memcpy(ref.data() + off + sub, data.data(), 64);
        break;
      }
      case 4: {  // inject: line contents become unpredictable clobber
        injector.poison(ns, off);
        poisoned[line] = true;
        known[line] = false;
        break;
      }
      case 5: {  // ECC transient on a healthy line: served, not fatal
        if (!poisoned[line]) injector.mark_transient(ns, off);
        break;
      }
      case 6: {  // timed load checks the shadow's fault set and bytes
        std::vector<std::uint8_t> out(kLineBytes);
        if (poisoned[line]) {
          EXPECT_THROW(ns.load(t, off, out), hw::MediaError)
              << "op " << op << " line " << line;
        } else {
          ns.load(t, off, out);
          if (known[line]) {
            ASSERT_EQ(0, std::memcmp(out.data(), ref.data() + off,
                                     kLineBytes))
                << "op " << op << " line " << line;
          }
        }
        break;
      }
      case 7: {  // ARS must report exactly the shadow's poison set
        std::vector<std::uint64_t> want;
        for (std::uint64_t l = 0; l < kLines; ++l)
          if (poisoned[l]) want.push_back(l * kLineBytes);
        ASSERT_EQ(platform.ars(ns, 0, kLines * kLineBytes), want)
            << "op " << op;
        break;
      }
    }
  }

  platform.crash();
  std::vector<std::uint8_t> image(kLines * kLineBytes);
  ns.peek(0, image);
  for (std::uint64_t l = 0; l < kLines; ++l) {
    if (!known[l] || poisoned[l]) continue;
    ASSERT_EQ(0, std::memcmp(image.data() + l * kLineBytes,
                             ref.data() + l * kLineBytes, kLineBytes))
        << "durable line " << l << " diverged from the shadow";
  }
  // The poison set survives the crash: media failure is not volatile.
  std::vector<std::uint64_t> want;
  for (std::uint64_t l = 0; l < kLines; ++l)
    if (poisoned[l]) want.push_back(l * kLineBytes);
  EXPECT_EQ(platform.ars(ns, 0, kLines * kLineBytes), want);
}

INSTANTIATE_TEST_SUITE_P(Seeds, PoisonShadowOracle,
                         ::testing::Values(41, 43, 47, 53));

// ----------------------------------------- line batcher / reader --------
// LineBatcher round-trip: a randomized program of variable-size appends
// published with commit(hold) must leave the namespace byte-identical to
// issuing the same bytes as plain persisted stores.
class LineRoundTrip : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(LineRoundTrip, BatcherMatchesPlainStores) {
  constexpr std::uint64_t kRegion = 32 << 10;
  Platform pa, pb;
  PmemNamespace& na = pa.optane(1 << 20);
  PmemNamespace& nb = pb.optane(1 << 20);
  ThreadCtx ta({.id = 0, .socket = 0, .mlp = 8, .seed = 5});
  ThreadCtx tb({.id = 0, .socket = 0, .mlp = 8, .seed = 5});
  sim::Rng rng(GetParam());

  pmem::LineBatcher batch;
  std::uint64_t cursor = 256;  // keep away from offset 0
  for (unsigned round = 0; round < 40 && cursor + 2048 < kRegion; ++round) {
    batch.reset(cursor);
    const unsigned pieces = 1 + static_cast<unsigned>(rng.uniform(6));
    std::vector<std::uint8_t> all;
    for (unsigned p = 0; p < pieces; ++p) {
      std::vector<std::uint8_t> piece(1 + rng.uniform(96));
      for (auto& b : piece) b = static_cast<std::uint8_t>(rng.uniform(256));
      batch.append(std::span<const std::uint8_t>(piece.data(), piece.size()));
      all.insert(all.end(), piece.begin(), piece.end());
    }
    const std::size_t hold = rng.uniform(std::min<std::size_t>(9, all.size()));
    batch.commit(ta, na, hold);
    na.sfence(ta);  // make the held-back commit word durable too

    nb.store_persist(tb, cursor,
                     std::span<const std::uint8_t>(all.data(), all.size()));
    cursor += all.size() + rng.uniform(128);
  }

  std::vector<std::uint8_t> da(kRegion), db(kRegion);
  na.load(ta, 0, std::span<std::uint8_t>(da.data(), da.size()));
  nb.load(tb, 0, std::span<std::uint8_t>(db.data(), db.size()));
  EXPECT_EQ(da, db);
}

// LineReader round-trip: randomized (offset, length, window) fetches —
// with and without a DRAM line cache, interleaved with stores that must
// invalidate it — always return exactly what plain loads return.
TEST_P(LineRoundTrip, ReaderMatchesPlainLoads) {
  constexpr std::uint64_t kRegion = 16 << 10;
  Platform platform;
  PmemNamespace& ns = platform.optane(1 << 20);
  ThreadCtx t({.id = 0, .socket = 0, .mlp = 8, .seed = 9});
  sim::Rng rng(GetParam() * 31 + 7);

  std::vector<std::uint8_t> image(kRegion);
  for (auto& b : image) b = static_cast<std::uint8_t>(rng.uniform(256));
  ns.store_persist(t, 0, std::span<const std::uint8_t>(image.data(),
                                                       image.size()));

  pmem::ReadCache cache(ns, {.capacity_lines = 32});
  pmem::LineReader reader;
  if (rng.uniform(2) == 0) reader.attach_cache(&cache);

  for (unsigned i = 0; i < 200; ++i) {
    if (rng.uniform(8) == 0) {
      // Overwrite a random run; the observer hook must invalidate any
      // cached lines so subsequent fetches see the new bytes.
      const std::uint64_t off = rng.uniform(kRegion - 256);
      std::vector<std::uint8_t> nw(1 + rng.uniform(200));
      for (auto& b : nw) b = static_cast<std::uint8_t>(rng.uniform(256));
      ns.store_persist(t, off,
                       std::span<const std::uint8_t>(nw.data(), nw.size()));
      std::memcpy(image.data() + off, nw.data(), nw.size());
      reader.discard();  // stores under a live staging span require this
    }
    const std::size_t len = 1 + rng.uniform(512);
    const std::uint64_t off = rng.uniform(kRegion - len);
    const std::size_t window =
        rng.uniform(2) == 0 ? 0 : len + rng.uniform(1024);
    if (rng.uniform(2) == 0) {
      const std::uint8_t* p = reader.fetch(t, ns, off, len, window);
      ASSERT_EQ(std::memcmp(p, image.data() + off, len), 0)
          << "fetch mismatch at off=" << off << " len=" << len;
    } else {
      std::vector<std::uint8_t> out(len);
      reader.read(t, ns, off, std::span<std::uint8_t>(out.data(), len),
                  window);
      ASSERT_EQ(std::memcmp(out.data(), image.data() + off, len), 0)
          << "read mismatch at off=" << off << " len=" << len;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, LineRoundTrip,
                         ::testing::Values(61, 67, 71, 73));

// ---------------------------------------------------- determinism -------
TEST(Determinism, IdenticalSeedsIdenticalResults) {
  auto run_once = [] {
    Platform platform(hw::Timing{}, /*seed=*/123);
    hw::NamespaceOptions o;
    o.device = hw::Device::kXp;
    o.size = 1ull << 30;
    o.discard_data = true;
    auto& ns = platform.add_namespace(o);
    lat::WorkloadSpec spec;
    spec.op = lat::Op::kMixed;
    spec.pattern = lat::Pattern::kRand;
    spec.access_size = 256;
    spec.threads = 6;
    spec.region_size = o.size;
    spec.duration = sim::ms(1);
    spec.seed = 99;
    const lat::Result r = lat::run(platform, ns, spec);
    return std::make_tuple(r.ops, r.bytes, r.latency.max(),
                           r.xp_delta.media_write_bytes);
  };
  EXPECT_EQ(run_once(), run_once());
}

TEST(Determinism, DifferentSeedsDiverge) {
  auto run_with = [](std::uint64_t seed) {
    Platform platform;
    hw::NamespaceOptions o;
    o.device = hw::Device::kXp;
    o.size = 1ull << 30;
    o.discard_data = true;
    auto& ns = platform.add_namespace(o);
    lat::WorkloadSpec spec;
    spec.op = lat::Op::kNtStore;
    spec.pattern = lat::Pattern::kRand;
    spec.access_size = 64;
    spec.threads = 2;
    spec.region_size = o.size;
    spec.duration = sim::us(200);
    spec.seed = seed;
    return lat::run(platform, ns, spec).xp_delta.media_write_bytes;
  };
  EXPECT_NE(run_with(1), run_with(2));
}

}  // namespace
}  // namespace xp
