// Tests for the mini-PMemKV cmap engine: correctness, persistence,
// concurrent simulated access, and the Fig 19 NUMA-degradation shape.
#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "pmemkv/cmap.h"
#include "sim/scheduler.h"
#include "xpsim/platform.h"

namespace xp::pmemkv {
namespace {

using hw::Platform;
using hw::PmemNamespace;
using sim::ThreadCtx;

ThreadCtx make_thread(unsigned id = 0, unsigned socket = 0) {
  return ThreadCtx({.id = id, .socket = socket, .mlp = 16, .seed = id + 1});
}

struct CMapFixture : ::testing::Test {
  CMapFixture() : ns(platform.optane(256 << 20)), pool(ns), map(pool) {
    ThreadCtx t = make_thread();
    pool.create(t, 64);
    map.create(t);
  }
  Platform platform;
  PmemNamespace& ns;
  pmem::Pool pool;
  CMap map;
};

TEST_F(CMapFixture, PutGetRemove) {
  ThreadCtx t = make_thread();
  map.put(t, "alpha", "one");
  map.put(t, "beta", "two");
  std::string v;
  EXPECT_TRUE(map.get(t, "alpha", &v));
  EXPECT_EQ(v, "one");
  EXPECT_TRUE(map.get(t, "beta", &v));
  EXPECT_EQ(v, "two");
  EXPECT_FALSE(map.get(t, "gamma", &v));
  EXPECT_TRUE(map.remove(t, "alpha"));
  EXPECT_FALSE(map.get(t, "alpha", &v));
  EXPECT_FALSE(map.remove(t, "alpha"));
}

TEST_F(CMapFixture, InPlaceOverwrite) {
  ThreadCtx t = make_thread();
  map.put(t, "k", "aaaa");
  map.put(t, "k", "bbbb");  // same size: in-place
  std::string v;
  EXPECT_TRUE(map.get(t, "k", &v));
  EXPECT_EQ(v, "bbbb");
}

TEST_F(CMapFixture, SizeChangingOverwrite) {
  ThreadCtx t = make_thread();
  map.put(t, "k", "short");
  map.put(t, "k", "a much longer value than before");
  std::string v;
  EXPECT_TRUE(map.get(t, "k", &v));
  EXPECT_EQ(v, "a much longer value than before");
  EXPECT_EQ(map.count(t), 1u);
}

TEST_F(CMapFixture, ManyKeysWithCollisions) {
  ThreadCtx t = make_thread();
  const int n = 2000;  // > buckets/32, plenty of chaining
  for (int i = 0; i < n; ++i)
    map.put(t, "key" + std::to_string(i), "val" + std::to_string(i));
  EXPECT_EQ(map.count(t), static_cast<std::uint64_t>(n));
  std::string v;
  for (int i = 0; i < n; ++i) {
    ASSERT_TRUE(map.get(t, "key" + std::to_string(i), &v)) << i;
    EXPECT_EQ(v, "val" + std::to_string(i));
  }
}

TEST_F(CMapFixture, SurvivesCrash) {
  ThreadCtx t = make_thread();
  for (int i = 0; i < 100; ++i)
    map.put(t, "key" + std::to_string(i), "val" + std::to_string(i));
  platform.crash();

  pmem::Pool pool2(ns);
  ASSERT_TRUE(pool2.open(t));
  CMap map2(pool2);
  map2.open(t);
  std::string v;
  for (int i = 0; i < 100; ++i) {
    ASSERT_TRUE(map2.get(t, "key" + std::to_string(i), &v)) << i;
    EXPECT_EQ(v, "val" + std::to_string(i));
  }
}

TEST_F(CMapFixture, ConcurrentSimThreads) {
  // 8 simulated threads hammer disjoint key ranges.
  sim::Scheduler sched;
  for (unsigned j = 0; j < 8; ++j) {
    sched.spawn({.id = j, .socket = 0, .mlp = 16, .seed = j + 1},
                [&, j, i = 0](ThreadCtx& ctx) mutable {
                  map.put(ctx, "t" + std::to_string(j) + "-" +
                                   std::to_string(i),
                          std::string(100, static_cast<char>('a' + j)));
                  return ++i < 50;
                });
  }
  sched.run();
  ThreadCtx t = make_thread();
  EXPECT_EQ(map.count(t), 400u);
  std::string v;
  EXPECT_TRUE(map.get(t, "t3-49", &v));
  EXPECT_EQ(v, std::string(100, 'd'));
}

// ---- Fig 19 anchor ------------------------------------------------------
double overwrite_bw(hw::Device device, unsigned server_socket,
                    unsigned threads) {
  Platform platform;
  PmemNamespace& ns = device == hw::Device::kXp
                          ? platform.optane(512 << 20, /*socket=*/0)
                          : platform.dram(512 << 20, /*socket=*/0);
  pmem::Pool pool(ns);
  CMap map(pool);
  {
    ThreadCtx t = make_thread(100, 0);
    pool.create(t, 64);
    map.create(t);
    for (int i = 0; i < 2000; ++i)
      map.put(t, "key" + std::to_string(i), std::string(512, 'x'));
  }
  platform.reset_timing();

  sim::Scheduler sched;
  std::vector<std::uint64_t> bytes(threads, 0);
  const sim::Time window = sim::ms(1);
  for (unsigned j = 0; j < threads; ++j) {
    sched.spawn(
        {.id = j, .socket = server_socket, .mlp = 16, .seed = j + 5},
        [&, j](ThreadCtx& ctx) {
          if (ctx.now() >= window) return false;
          const int k = static_cast<int>(ctx.rng().uniform(2000));
          std::string v;
          map.get(ctx, "key" + std::to_string(k), &v);
          map.put(ctx, "key" + std::to_string(k), std::string(512, 'y'));
          bytes[j] += 1024;
          return true;
        });
  }
  sched.run();
  std::uint64_t total = 0;
  for (auto b : bytes) total += b;
  return sim::gbps(total, window);
}

TEST(Fig19Shape, RemoteOptaneDegradesMoreThanDram) {
  const double xp_local = overwrite_bw(hw::Device::kXp, 0, 8);
  const double xp_remote = overwrite_bw(hw::Device::kXp, 1, 8);
  const double dram_local = overwrite_bw(hw::Device::kDram, 0, 8);
  const double dram_remote = overwrite_bw(hw::Device::kDram, 1, 8);

  // Paper: migrating the server to the remote socket costs Optane ~75%
  // of its throughput but DRAM only ~8%.
  EXPECT_LT(xp_remote, 0.6 * xp_local);
  EXPECT_GT(dram_remote, 0.55 * dram_local);
  // And the Optane hit is relatively larger than the DRAM hit.
  EXPECT_LT(xp_remote / xp_local, dram_remote / dram_local);
}

}  // namespace
}  // namespace xp::pmemkv
