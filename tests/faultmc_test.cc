// Media fault-injection campaigns over every persistent store (the
// robustness tentpole's end-to-end gate).
//
// explore_faults() arms the k-th device read to poison the XPLine it
// touches (the process dies at the machine check), then re-opens the
// store from the poisoned image, runs its repair path and verifies the
// containment contract: every explored point ends in full recovery or a
// typed, *reported* error — never silent corruption. The tier-1 smoke
// here sweeps a fixed-seed sample across all four store families; the
// exhaustive sweeps live in bench/crashmc_sweep.cc --faults.
#include <gtest/gtest.h>

#include <vector>

#include "crashmc/faultcampaign.h"
#include "crashmc/workloads.h"
#include "xpsim/fault.h"

namespace xp::crashmc {
namespace {

std::string first_violation(const FaultResult& r) {
  if (r.violations.empty()) return "";
  return "@" + std::to_string(r.violations[0].point) + ": " +
         r.violations[0].detail;
}

// Fixed-seed bounded smoke across the whole store panel (pmemlib, lsmkv,
// novafs, cmap, stree): ~100 injection points total, CI's tier-1 gate.
TEST(FaultCampaign, SmokeEveryStoreContainsMediaFaults) {
  FaultOptions opts;
  opts.max_exhaustive = 0;  // always sample
  opts.samples = 20;
  opts.seed = 42;
  for (const auto& target : all_targets(/*checksums=*/true)) {
    const FaultResult r = explore_faults(*target, opts);
    EXPECT_TRUE(r.ok()) << target->name() << " " << first_violation(r);
    EXPECT_GT(r.total_reads, 0u) << target->name();
    EXPECT_GT(r.faults_fired, 0u) << target->name();
    // Every fired machine check must surface as a typed MediaError; a
    // workload that swallows one is itself flagged as a violation.
    EXPECT_EQ(r.faults_fired, r.typed_errors) << target->name();
  }
}

// The acceptance sweep: >= 500 distinct injection points spread across
// all four store families, zero silent corruption.
TEST(FaultCampaign, FiveHundredPointsZeroSilentCorruption) {
  FaultOptions opts;
  opts.max_exhaustive = 0;
  opts.samples = 120;       // phase 1: every reachable read site
  opts.poison_points = 60;  // phase 2: at-rest poison vs. recovery
  opts.seed = 1;
  std::uint64_t injected = 0;
  for (const auto& target : all_targets(/*checksums=*/true)) {
    const FaultResult r = explore_faults(*target, opts);
    EXPECT_TRUE(r.ok()) << target->name() << " " << first_violation(r);
    EXPECT_EQ(r.faults_fired, r.typed_errors) << target->name();
    injected += r.faults_fired + r.lines_poisoned;
  }
  EXPECT_GE(injected, 500u);
}

// The checksum options change the on-media format; the campaign must
// hold without them too (poison alone is still a typed signal).
TEST(FaultCampaign, ContainmentHoldsWithoutChecksums) {
  FaultOptions opts;
  opts.max_exhaustive = 0;
  opts.samples = 8;
  opts.seed = 7;
  for (const auto& target : all_targets(/*checksums=*/false)) {
    const FaultResult r = explore_faults(*target, opts);
    EXPECT_TRUE(r.ok()) << target->name() << " " << first_violation(r);
  }
}

// An armed-but-never-fired injector must be invisible: same durable
// image, same recovery as a run with no injector at all. This is the
// regression canary for the "injector off == bit-identical" guarantee.
TEST(FaultCampaign, ArmedButUnfiredInjectorIsInert) {
  const auto target = make_pmemlib_target();

  hw::Platform& clean = target->reset();
  target->run();
  clean.reset_timing();
  ASSERT_EQ(target->recover_and_check(), "");
  std::vector<std::uint8_t> base(target->nspace().size());
  target->nspace().peek(0, base);

  hw::Platform& armed = target->reset();
  hw::FaultInjector injector(armed, 1);
  injector.arm_nth_device_read(1ull << 40);  // far past the workload
  target->run();
  EXPECT_FALSE(armed.media_fault_fired());
  armed.clear_media_fault();
  armed.reset_timing();
  ASSERT_EQ(target->recover_and_check(), "");
  std::vector<std::uint8_t> img(target->nspace().size());
  target->nspace().peek(0, img);
  EXPECT_TRUE(img == base) << "armed-but-idle injector perturbed the "
                              "durable image";
}

// Deterministic replay: the same seed explores the same points with the
// same outcome counts.
TEST(FaultCampaign, SameSeedReplaysIdentically) {
  FaultOptions opts;
  opts.max_exhaustive = 0;
  opts.samples = 6;
  opts.seed = 99;
  const auto t1 = make_stree_target();
  const auto t2 = make_stree_target();
  const FaultResult a = explore_faults(*t1, opts);
  const FaultResult b = explore_faults(*t2, opts);
  EXPECT_EQ(a.total_reads, b.total_reads);
  EXPECT_EQ(a.faults_fired, b.faults_fired);
  EXPECT_EQ(a.typed_errors, b.typed_errors);
  EXPECT_EQ(a.violations.size(), b.violations.size());
}

}  // namespace
}  // namespace xp::crashmc
