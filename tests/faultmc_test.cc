// Media fault-injection campaigns over every persistent store (the
// robustness tentpole's end-to-end gate).
//
// explore_faults() arms the k-th device read to poison the XPLine it
// touches (the process dies at the machine check), then re-opens the
// store from the poisoned image, runs its repair path and verifies the
// containment contract: every explored point ends in full recovery or a
// typed, *reported* error — never silent corruption. The tier-1 smoke
// here sweeps a fixed-seed sample across all four store families; the
// exhaustive sweeps live in bench/crashmc_sweep.cc --faults.
#include <gtest/gtest.h>

#include <map>
#include <string>
#include <vector>

#include "crashmc/faultcampaign.h"
#include "crashmc/workloads.h"
#include "sim/rng.h"
#include "workload/shard.h"
#include "xpsim/fault.h"

namespace xp::crashmc {
namespace {

std::string first_violation(const FaultResult& r) {
  if (r.violations.empty()) return "";
  return "@" + std::to_string(r.violations[0].point) + ": " +
         r.violations[0].detail;
}

// Fixed-seed bounded smoke across the whole store panel (pmemlib, lsmkv,
// novafs, cmap, stree): ~100 injection points total, CI's tier-1 gate.
TEST(FaultCampaign, SmokeEveryStoreContainsMediaFaults) {
  FaultOptions opts;
  opts.max_exhaustive = 0;  // always sample
  opts.samples = 20;
  opts.seed = 42;
  for (const auto& target : all_targets(/*checksums=*/true)) {
    const FaultResult r = explore_faults(*target, opts);
    EXPECT_TRUE(r.ok()) << target->name() << " " << first_violation(r);
    EXPECT_GT(r.total_reads, 0u) << target->name();
    EXPECT_GT(r.faults_fired, 0u) << target->name();
    // Every fired machine check must surface as a typed MediaError; a
    // workload that swallows one is itself flagged as a violation.
    EXPECT_EQ(r.faults_fired, r.typed_errors) << target->name();
  }
}

// The acceptance sweep: >= 500 distinct injection points spread across
// all four store families, zero silent corruption.
TEST(FaultCampaign, FiveHundredPointsZeroSilentCorruption) {
  FaultOptions opts;
  opts.max_exhaustive = 0;
  opts.samples = 120;       // phase 1: every reachable read site
  opts.poison_points = 60;  // phase 2: at-rest poison vs. recovery
  opts.seed = 1;
  std::uint64_t injected = 0;
  for (const auto& target : all_targets(/*checksums=*/true)) {
    const FaultResult r = explore_faults(*target, opts);
    EXPECT_TRUE(r.ok()) << target->name() << " " << first_violation(r);
    EXPECT_EQ(r.faults_fired, r.typed_errors) << target->name();
    injected += r.faults_fired + r.lines_poisoned;
  }
  EXPECT_GE(injected, 500u);
}

// The checksum options change the on-media format; the campaign must
// hold without them too (poison alone is still a typed signal).
TEST(FaultCampaign, ContainmentHoldsWithoutChecksums) {
  FaultOptions opts;
  opts.max_exhaustive = 0;
  opts.samples = 8;
  opts.seed = 7;
  for (const auto& target : all_targets(/*checksums=*/false)) {
    const FaultResult r = explore_faults(*target, opts);
    EXPECT_TRUE(r.ok()) << target->name() << " " << first_violation(r);
  }
}

// An armed-but-never-fired injector must be invisible: same durable
// image, same recovery as a run with no injector at all. This is the
// regression canary for the "injector off == bit-identical" guarantee.
TEST(FaultCampaign, ArmedButUnfiredInjectorIsInert) {
  const auto target = make_pmemlib_target();

  hw::Platform& clean = target->reset();
  target->run();
  clean.reset_timing();
  ASSERT_EQ(target->recover_and_check(), "");
  std::vector<std::uint8_t> base(target->nspace().size());
  target->nspace().peek(0, base);

  hw::Platform& armed = target->reset();
  hw::FaultInjector injector(armed, 1);
  injector.arm_nth_device_read(1ull << 40);  // far past the workload
  target->run();
  EXPECT_FALSE(armed.media_fault_fired());
  armed.clear_media_fault();
  armed.reset_timing();
  ASSERT_EQ(target->recover_and_check(), "");
  std::vector<std::uint8_t> img(target->nspace().size());
  target->nspace().peek(0, img);
  EXPECT_TRUE(img == base) << "armed-but-idle injector perturbed the "
                              "durable image";
}

// Deterministic replay: the same seed explores the same points with the
// same outcome counts.
TEST(FaultCampaign, SameSeedReplaysIdentically) {
  FaultOptions opts;
  opts.max_exhaustive = 0;
  opts.samples = 6;
  opts.seed = 99;
  const auto t1 = make_stree_target();
  const auto t2 = make_stree_target();
  const FaultResult a = explore_faults(*t1, opts);
  const FaultResult b = explore_faults(*t2, opts);
  EXPECT_EQ(a.total_reads, b.total_reads);
  EXPECT_EQ(a.faults_fired, b.faults_fired);
  EXPECT_EQ(a.typed_errors, b.typed_errors);
  EXPECT_EQ(a.violations.size(), b.violations.size());
}

// ---------------------------------------------------------------------
// Self-healing sharded frontend under media faults. These drive the
// frontend's typed try_* path directly rather than through
// explore_faults(): the frontend is *supposed* to contain MediaErrors
// (the campaign harness treats a workload-caught fault as a violation,
// because bare stores must let it propagate).

// Poison up to `max_lines` nonzero XPLines of the durable image, so the
// injected faults are guaranteed to sit under live store data.
unsigned poison_live_lines(hw::PmemNamespace& ns, unsigned max_lines,
                           unsigned stride = 1) {
  std::vector<std::uint8_t> img(ns.size());
  ns.peek(0, img);
  hw::FaultInjector inj(ns.platform());
  unsigned planted = 0, seen = 0;
  for (std::uint64_t off = 0; off + hw::Platform::kXpLineBytes <= img.size();
       off += hw::Platform::kXpLineBytes) {
    bool live = false;
    for (unsigned b = 0; b < hw::Platform::kXpLineBytes && !live; ++b)
      live = img[off + b] != 0;
    if (!live) continue;
    if (seen++ % stride != 0) continue;
    inj.poison(ns, off);
    if (++planted >= max_lines) break;
  }
  return planted;
}

// At-rest poison lands on two of four DIMMs mid-workload. The
// containment contract: every op ends in success or a typed error
// (never an escaped exception, never a value outside the model), the
// frontend quarantines and rebuilds the damaged stores online, and once
// healthy again the full keyspace — including the rebuilt stores' own
// slices — is byte-identical to the model. Zero acked writes lost.
TEST(FaultCampaign, ShardedFrontendContainsAtRestPoisonMidRun) {
  hw::Platform platform;
  const auto ns =
      workload::ShardedStore::make_namespaces(platform, 4, 16ull << 20);
  workload::ShardOptions so;
  so.kind = workload::StoreKind::kLsmkv;
  so.replicas = 2;
  so.tuning.memtable_bytes = 2 << 10;
  workload::ShardedStore store(ns, so);
  sim::ThreadCtx t({.id = 1, .socket = 0, .mlp = 8, .seed = 11});
  store.create(t);

  std::map<std::string, std::string> model;
  auto key = [](std::uint64_t i) { return workload::key_name(i); };
  for (int i = 0; i < 200; ++i) {
    model[key(i)] = workload::make_value(i, 0, 64);
    ASSERT_TRUE(store.try_put(t, key(i), model[key(i)]).ok());
  }
  store.flush_pending(t);

  sim::Rng rng(17);
  for (int op = 0; op < 400; ++op) {
    // Two staggered failure domains: stores 0 and 2 go bad while the
    // workload runs. Copies are (s, s+1), so every logical shard keeps
    // at least one clean copy throughout.
    if (op == 100) ASSERT_GT(poison_live_lines(*ns[0], 12, 2), 0u);
    if (op == 220) ASSERT_GT(poison_live_lines(*ns[2], 12, 2), 0u);
    const std::uint64_t id = rng.uniform(200);
    if (rng.uniform(3) == 0) {
      const std::string v = workload::make_value(id, op + 1, 64);
      const auto r = store.try_put(t, key(id), v);
      if (r.ok()) model[key(id)] = v;  // only acked writes enter the model
    } else {
      std::string v;
      const auto r = store.try_get(t, key(id), &v);
      ASSERT_NE(r.status, workload::OpStatus::kDataLoss) << op;
      if (r.ok()) {
        ASSERT_EQ(v, model[key(id)]) << "silent corruption at op " << op;
      }
    }
    store.background_turn(t);
  }

  for (int turn = 0; turn < 6000 && !store.all_healthy(); ++turn)
    store.background_turn(t);
  ASSERT_TRUE(store.all_healthy());
  store.flush_pending(t);
  const auto& st = store.resilience();
  EXPECT_GT(st.media_errors, 0u);
  EXPECT_GE(st.quarantined, 1u);
  EXPECT_EQ(st.recovered, st.quarantined);
  EXPECT_GT(st.keys_resilvered, 0u);
  EXPECT_EQ(st.keys_lost, 0u);
  EXPECT_TRUE(store.check(t).ok());

  // Full keyspace, byte-identical — through the frontend and from each
  // rebuilt store directly.
  for (auto& [k, want] : model) {
    std::string v;
    ASSERT_TRUE(store.try_get(t, k, &v).ok()) << k;
    ASSERT_EQ(v, want) << k;
    const unsigned s = workload::shard_of(k, 4);
    for (unsigned r = 0; r < 2; ++r) {
      std::string copy;
      ASSERT_TRUE(store.shard((s + r) % 4).get(t, k, &copy)) << k;
      ASSERT_EQ(copy, want) << k << " copy " << r;
    }
  }
}

// An armed device read fires mid-workload: the machine check kills the
// "process" (frozen platform — the frontend must NOT contain that), and
// a fresh frontend over the same namespaces recovers: the ARS pass at
// open quarantines the poisoned store, the rebuild re-silvers it from
// its replica, and every key reads back as its last-acked value (the
// one in-flight op may land either side of the crash).
TEST(FaultCampaign, ShardedFrontendRecoversFromArmedReadCrash) {
  hw::Platform platform;
  const auto ns =
      workload::ShardedStore::make_namespaces(platform, 2, 16ull << 20);
  workload::ShardOptions so;
  so.kind = workload::StoreKind::kLsmkv;
  so.replicas = 2;
  so.tuning.memtable_bytes = 2 << 10;

  std::map<std::string, std::string> model;
  std::string inflight_key, inflight_val;
  {
    workload::ShardedStore store(ns, so);
    sim::ThreadCtx t({.id = 1, .socket = 0, .mlp = 8, .seed = 3});
    store.create(t);
    for (int i = 0; i < 80; ++i) {
      model[workload::key_name(i)] = workload::make_value(i, 0, 64);
      store.put(t, workload::key_name(i), model[workload::key_name(i)]);
    }
    store.flush_pending(t);

    hw::FaultInjector inj(platform);
    inj.arm_nth_device_read(400);
    bool crashed = false;
    sim::Rng rng(5);
    try {
      for (int op = 0; op < 4000; ++op) {
        const std::uint64_t id = rng.uniform(80);
        if (rng.uniform(2) == 0) {
          inflight_key = workload::key_name(id);
          inflight_val = workload::make_value(id, op + 1, 64);
          const auto r = store.try_put(t, inflight_key, inflight_val);
          if (r.ok()) model[inflight_key] = inflight_val;
          inflight_key.clear();
        } else {
          std::string v;
          (void)store.try_get(t, workload::key_name(id), &v);
        }
      }
    } catch (const hw::MediaError&) {
      crashed = platform.frozen();
    }
    ASSERT_TRUE(crashed) << "armed read never fired — workload too small";
  }

  platform.clear_media_fault();
  platform.reset_timing();
  workload::ShardedStore again(ns, so);
  sim::ThreadCtx t({.id = 9, .socket = 0, .mlp = 8, .seed = 7});
  ASSERT_TRUE(again.open(t));
  EXPECT_FALSE(again.all_healthy());  // ARS-at-open found the poison
  for (int turn = 0; turn < 6000 && !again.all_healthy(); ++turn)
    again.background_turn(t);
  ASSERT_TRUE(again.all_healthy());
  EXPECT_GE(again.resilience().recovered, 1u);
  EXPECT_TRUE(again.check(t).ok());

  for (auto& [k, want] : model) {
    std::string v;
    const auto r = again.try_get(t, k, &v);
    ASSERT_TRUE(r.ok()) << k;
    if (k == inflight_key) {
      // The crash interrupted this put: pre- or post-state, nothing else.
      ASSERT_TRUE(v == want || v == inflight_val) << k;
    } else {
      ASSERT_EQ(v, want) << k;
    }
  }
}

}  // namespace
}  // namespace xp::crashmc
