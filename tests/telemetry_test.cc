// Telemetry subsystem tests: counter arithmetic, the snapshot/delta
// registry, the conservation laws that tie every byte counter to the
// event counts that produced it, the fixed-cost sampler, and the
// Chrome-trace writer (validity, determinism, truncation).
//
// The conservation laws are the load-bearing part: they hold *exactly*
// (not statistically) because each media transfer increments its byte
// counter and its cause counter in the same call, so any future change
// that breaks the pairing fails here on every seed.
#include <gtest/gtest.h>

#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <limits>
#include <string>
#include <vector>

#include "lattester/runner.h"
#include "sim/scheduler.h"
#include "telemetry/registry.h"
#include "telemetry/sampler.h"
#include "telemetry/session.h"
#include "telemetry/trace.h"
#include "xpsim/counters.h"
#include "xpsim/fault.h"
#include "xpsim/platform.h"

namespace xp {
namespace {

using hw::Platform;
using hw::PmemNamespace;
using sim::ThreadCtx;

// ------------------------------------------------ counter arithmetic ----

hw::XpCounters make_xp(std::uint64_t base) {
  hw::XpCounters c;
  c.imc_read_bytes = base + 1;
  c.imc_write_bytes = base + 2;
  c.media_read_bytes = base + 3;
  c.media_write_bytes = base + 4;
  c.buffer_hit_reads = base + 5;
  c.buffer_miss_reads = base + 6;
  c.evictions_clean = base + 7;
  c.evictions_full = base + 8;
  c.evictions_partial = base + 9;
  c.ait_misses = base + 10;
  c.wear_migrations = base + 11;
  return c;
}

TEST(Counters, XpPlusMinusRoundTrip) {
  const hw::XpCounters a = make_xp(1000);
  const hw::XpCounters b = make_xp(17);
  hw::XpCounters sum = a;
  sum += b;
  const hw::XpCounters back = sum - b;
  EXPECT_EQ(back.imc_read_bytes, a.imc_read_bytes);
  EXPECT_EQ(back.imc_write_bytes, a.imc_write_bytes);
  EXPECT_EQ(back.media_read_bytes, a.media_read_bytes);
  EXPECT_EQ(back.media_write_bytes, a.media_write_bytes);
  EXPECT_EQ(back.buffer_hit_reads, a.buffer_hit_reads);
  EXPECT_EQ(back.buffer_miss_reads, a.buffer_miss_reads);
  EXPECT_EQ(back.evictions_clean, a.evictions_clean);
  EXPECT_EQ(back.evictions_full, a.evictions_full);
  EXPECT_EQ(back.evictions_partial, a.evictions_partial);
  EXPECT_EQ(back.ait_misses, a.ait_misses);
  EXPECT_EQ(back.wear_migrations, a.wear_migrations);
}

TEST(Counters, DramAndCacheRoundTrip) {
  hw::DramCounters d{100, 200, 300, 400}, dd{10, 20, 30, 40};
  hw::DramCounters ds = d;
  ds += dd;
  const hw::DramCounters db = ds - dd;
  EXPECT_EQ(db.read_bytes, d.read_bytes);
  EXPECT_EQ(db.write_bytes, d.write_bytes);
  EXPECT_EQ(db.row_hits, d.row_hits);
  EXPECT_EQ(db.row_misses, d.row_misses);

  hw::CacheCounters c{1, 2, 3, 4, 5, 6, 7}, cc{10, 20, 30, 40, 50, 60, 70};
  hw::CacheCounters cs = c;
  cs += cc;
  const hw::CacheCounters cb = cs - cc;
  EXPECT_EQ(cb.load_hits, c.load_hits);
  EXPECT_EQ(cb.load_misses, c.load_misses);
  EXPECT_EQ(cb.store_hits, c.store_hits);
  EXPECT_EQ(cb.store_misses, c.store_misses);
  EXPECT_EQ(cb.natural_evictions, c.natural_evictions);
  EXPECT_EQ(cb.writebacks, c.writebacks);
  EXPECT_EQ(cb.explicit_flushes, c.explicit_flushes);
}

TEST(Counters, EwrEdgeCases) {
  hw::XpCounters c;
  // No write traffic at all: nothing was amplified.
  EXPECT_DOUBLE_EQ(c.ewr(), 1.0);
  EXPECT_DOUBLE_EQ(c.write_amplification(), 1.0);
  // Interface writes still coalescing in the buffer: infinite EWR (the
  // old 99.0 sentinel is gone).
  c.imc_write_bytes = 4096;
  EXPECT_TRUE(std::isinf(c.ewr()));
  EXPECT_GT(c.ewr(), 0);
  EXPECT_DOUBLE_EQ(c.write_amplification(), 0.0);
  // Media writes with no interface writes (migration-only interval).
  hw::XpCounters m;
  m.media_write_bytes = 256;
  EXPECT_DOUBLE_EQ(m.ewr(), 0.0);
  EXPECT_TRUE(std::isinf(m.write_amplification()));
}

TEST(Counters, EwrTimesWriteAmpIsOne) {
  hw::XpCounters c;
  c.imc_write_bytes = 64 * 1000;
  c.media_write_bytes = 256 * 900;
  EXPECT_DOUBLE_EQ(c.ewr() * c.write_amplification(), 1.0);
  EXPECT_DOUBLE_EQ(c.ewr(),
                   static_cast<double>(c.imc_write_bytes) /
                       static_cast<double>(c.media_write_bytes));
}

// ------------------------------------------------------- registry -------

TEST(Registry, SnapshotShapeMatchesTopology) {
  Platform platform;
  const telemetry::Snapshot s = telemetry::Snapshot::capture(platform);
  EXPECT_EQ(s.sockets(), platform.timing().sockets);
  EXPECT_EQ(s.channels(), platform.timing().channels_per_socket);
  ASSERT_EQ(s.dram.size(), s.xp.size());
  EXPECT_EQ(s.cache.size(), platform.timing().sockets);
}

TEST(Registry, DeltaMatchesDirectCounterSubtraction) {
  Platform platform;
  PmemNamespace& ns = platform.optane(64 << 20);
  ThreadCtx t({.id = 0, .socket = 0, .mlp = 8, .seed = 1});

  const telemetry::Snapshot before = telemetry::Snapshot::capture(platform);
  const hw::XpCounters direct_before = ns.xp_counters();
  std::vector<std::uint8_t> buf(4096, 0xab);
  for (int i = 0; i < 64; ++i) ns.ntstore_persist(t, i * 4096, buf);
  const telemetry::Delta d =
      telemetry::Snapshot::capture(platform) - before;
  const hw::XpCounters direct = ns.xp_counters() - direct_before;

  EXPECT_EQ(d.xp_total().imc_write_bytes, direct.imc_write_bytes);
  EXPECT_EQ(d.xp_total().media_write_bytes, direct.media_write_bytes);
  EXPECT_EQ(d.xp_total().media_read_bytes, direct.media_read_bytes);
  EXPECT_GT(d.xp_total().imc_write_bytes, 0u);
  EXPECT_GT(d.persist_events, 0u);
}

TEST(Registry, DeltaGaugesComeFromIntervalEnd) {
  Platform platform;
  PmemNamespace& ns = platform.optane(64 << 20);
  ThreadCtx t({.id = 0, .socket = 0, .mlp = 8, .seed = 1});
  const telemetry::Snapshot before = telemetry::Snapshot::capture(platform);
  // Partially dirty one combining line so the dirty-line gauge is live.
  std::vector<std::uint8_t> buf(64, 0x5a);
  ns.ntstore(t, 0, buf);
  const telemetry::Snapshot after = telemetry::Snapshot::capture(platform);
  const telemetry::Delta d = after - before;
  std::size_t end_dirty = 0, delta_dirty = 0;
  for (unsigned s = 0; s < after.sockets(); ++s)
    for (unsigned ch = 0; ch < after.channels(); ++ch) {
      end_dirty += after.xp[s][ch].buffer_dirty_lines;
      delta_dirty += d.xp[s][ch].buffer_dirty_lines;
    }
  EXPECT_GT(end_dirty, 0u) << "no combining line went dirty";
  EXPECT_EQ(delta_dirty, end_dirty) << "gauges must not subtract";
}

TEST(Registry, PersistEventDeltaMatchesPlatform) {
  Platform platform;
  PmemNamespace& ns = platform.optane(16 << 20);
  ThreadCtx t({.id = 0, .socket = 0, .mlp = 8, .seed = 1});
  const telemetry::Snapshot before = telemetry::Snapshot::capture(platform);
  const std::uint64_t events_before = platform.persist_events();
  std::vector<std::uint8_t> buf(256, 1);
  for (int i = 0; i < 16; ++i) ns.store_persist(t, i * 256, buf);
  const telemetry::Delta d =
      telemetry::Snapshot::capture(platform) - before;
  EXPECT_EQ(d.persist_events, platform.persist_events() - events_before);
  EXPECT_GT(d.persist_events, 0u);
}

// ------------------------------------------------- conservation laws ----
// Every media transfer has exactly one cause the counters also record:
//   media_write_bytes == xpline * (evictions_full + evictions_partial
//                                  + wear_migrations)
//   media_read_bytes  == xpline * (buffer_miss_reads + evictions_partial
//                                  + wear_migrations)
//   imc_read_bytes    == cacheline * (buffer_hit_reads + buffer_miss_reads)
// These hold exactly at any quiescent point, per DIMM and in aggregate.

void expect_conservation(const hw::XpCounters& c, const hw::Timing& tm,
                         const char* what) {
  EXPECT_EQ(c.media_write_bytes,
            tm.xpline * (c.evictions_full + c.evictions_partial +
                         c.wear_migrations))
      << what << ": media writes not explained by evictions+migrations";
  EXPECT_EQ(c.media_read_bytes,
            tm.xpline * (c.buffer_miss_reads + c.evictions_partial +
                         c.wear_migrations))
      << what << ": media reads not explained by misses+RMW+migrations";
  EXPECT_EQ(c.imc_read_bytes,
            tm.cacheline * (c.buffer_hit_reads + c.buffer_miss_reads))
      << what << ": every iMC read must hit or miss the buffer";
}

class ConservationLaws : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(ConservationLaws, RandomizedWorkloadConservesBytes) {
  hw::Timing timing;
  timing.wear_threshold = 64;  // low threshold so migrations participate
  Platform platform(timing, /*seed=*/GetParam());
  PmemNamespace& ns = platform.optane(1 << 20);
  ThreadCtx t({.id = 0, .socket = 0, .mlp = 8, .seed = 7});
  sim::Rng rng(GetParam());

  constexpr std::uint64_t kRegion = 256 << 10;
  for (int op = 0; op < 4000; ++op) {
    const std::size_t len = 1 + rng.uniform(512);
    const std::uint64_t off = rng.uniform(kRegion - len);
    std::vector<std::uint8_t> data(len,
                                   static_cast<std::uint8_t>(rng.next()));
    switch (rng.uniform(5)) {
      case 0:
        ns.ntstore_persist(t, off, data);
        break;
      case 1:
        ns.store(t, off, data);
        break;
      case 2:
        ns.store_persist(t, off, data);
        break;
      case 3:
        ns.persist(t, off, len);
        break;
      case 4: {
        std::vector<std::uint8_t> out(len);
        ns.load(t, off, out);
        break;
      }
    }
  }
  // Hammer one hot XPLine so wear migrations participate in the laws
  // (spread random traffic alone rarely crosses even a low threshold).
  std::vector<std::uint8_t> line(256, 0xcc);
  for (int i = 0; i < 512; ++i) ns.ntstore_persist(t, 0, line);

  const telemetry::Snapshot s = telemetry::Snapshot::capture(platform);
  const hw::XpCounters total = s.xp_total();
  ASSERT_GT(total.media_write_bytes, 0u) << "workload wrote nothing";
  ASSERT_GT(total.wear_migrations, 0u)
      << "wear threshold never reached; migration term untested";
  expect_conservation(total, platform.timing(), "aggregate");
  for (unsigned so = 0; so < s.sockets(); ++so)
    for (unsigned ch = 0; ch < s.channels(); ++ch)
      expect_conservation(s.xp[so][ch].counters, platform.timing(),
                          "per-DIMM");
}

INSTANTIATE_TEST_SUITE_P(Seeds, ConservationLaws,
                         ::testing::Values(1, 2, 3, 5, 8, 13));

TEST(ConservationLaws, HoldsForLattesterDeltas) {
  // The laws are linear, so they hold for interval deltas too —
  // lat::Result::xp_delta must satisfy them for any workload.
  Platform platform;
  hw::NamespaceOptions o;
  o.device = hw::Device::kXp;
  o.size = 1ull << 30;
  o.discard_data = true;
  auto& ns = platform.add_namespace(o);
  lat::WorkloadSpec spec;
  spec.op = lat::Op::kMixed;
  spec.pattern = lat::Pattern::kRand;
  spec.access_size = 256;
  spec.threads = 4;
  spec.region_size = o.size;
  spec.duration = sim::us(200);
  const lat::Result r = lat::run(platform, ns, spec);
  ASSERT_GT(r.xp_delta.media_write_bytes, 0u);
  expect_conservation(r.xp_delta, platform.timing(), "lat delta");
  EXPECT_DOUBLE_EQ(r.ewr, r.xp_delta.ewr());
}

// --------------------------------------------------------- session ------

lat::Result seeded_run(Platform& platform, lat::Op op) {
  hw::NamespaceOptions o;
  o.device = hw::Device::kXp;
  o.size = 256ull << 20;
  o.discard_data = true;
  auto& ns = platform.add_namespace(o);
  lat::WorkloadSpec spec;
  spec.op = op;
  spec.pattern = lat::Pattern::kRand;
  spec.access_size = 256;
  spec.threads = 2;
  spec.region_size = o.size;
  spec.duration = sim::us(200);
  spec.seed = 11;
  return lat::run(platform, ns, spec);
}

TEST(Session, AttachesAndDetaches) {
  Platform platform;
  EXPECT_EQ(platform.telemetry(), nullptr);
  {
    telemetry::Session session(platform);
    EXPECT_EQ(platform.telemetry(), &session);
    session.finish();
    EXPECT_EQ(platform.telemetry(), nullptr);
  }
  EXPECT_EQ(platform.telemetry(), nullptr);
}

TEST(Session, NewerSessionSurvivesOldFinish) {
  Platform platform;
  auto first = std::make_unique<telemetry::Session>(platform);
  telemetry::Session second(platform);  // replaces first as the sink
  first->finish();                      // must not detach `second`
  first.reset();
  EXPECT_EQ(platform.telemetry(), &second);
}

TEST(Session, PersistHistogramSumsToPlatformCount) {
  Platform platform;
  telemetry::Session session(platform);
  const std::uint64_t before = platform.persist_events();
  seeded_run(platform, lat::Op::kStoreClwb);
  std::uint64_t histo = 0;
  for (unsigned k = 0; k < hw::kPersistEventKinds; ++k)
    histo += session.persist_count(static_cast<hw::PersistEventKind>(k));
  EXPECT_EQ(histo, platform.persist_events() - before);
  EXPECT_GT(
      session.persist_count(hw::PersistEventKind::kWpqEntry) +
          session.persist_count(hw::PersistEventKind::kSfence),
      0u);
}

TEST(Session, EvictionHistogramMatchesCounters) {
  Platform platform;
  telemetry::Session session(platform);
  seeded_run(platform, lat::Op::kNtStore);
  const hw::XpCounters total =
      telemetry::Snapshot::capture(platform).xp_total();
  // A rewrite flush increments evictions_full in the hardware counters
  // but is distinguished by kind at the sink.
  EXPECT_EQ(session.eviction_count(hw::EvictKind::kFull) +
                session.eviction_count(hw::EvictKind::kRewrite),
            total.evictions_full);
  EXPECT_EQ(session.eviction_count(hw::EvictKind::kPartial),
            total.evictions_partial);
  EXPECT_EQ(session.eviction_count(hw::EvictKind::kClean),
            total.evictions_clean);
  EXPECT_EQ(session.ait_miss_count(), total.ait_misses);
  EXPECT_GT(session.eviction_count(hw::EvictKind::kFull) +
                session.eviction_count(hw::EvictKind::kPartial),
            0u);
}

TEST(Session, TimingNeutral) {
  // A platform with a session attached must produce byte-identical
  // simulated results to one without: sinks observe, never perturb.
  auto run_once = [](bool with_session) {
    Platform platform(hw::Timing{}, /*seed=*/123);
    std::unique_ptr<telemetry::Session> session;
    if (with_session)
      session = std::make_unique<telemetry::Session>(platform);
    const lat::Result r = seeded_run(platform, lat::Op::kMixed);
    return std::make_tuple(r.ops, r.bytes, r.latency.count(),
                           r.latency.max(), r.xp_delta.media_write_bytes,
                           r.xp_delta.imc_read_bytes);
  };
  EXPECT_EQ(run_once(false), run_once(true));
}

TEST(Session, CrashPointEmitsTraceEvent) {
  Platform platform;
  telemetry::Session session(
      platform, {.trace_path = ::testing::TempDir() + "crash_trace.json"});
  PmemNamespace& ns = platform.optane(16 << 20);
  ThreadCtx t({.id = 0, .socket = 0, .mlp = 8, .seed = 1});
  platform.crash_after(5);
  std::vector<std::uint8_t> buf(64, 9);
  EXPECT_THROW(
      {
        for (int i = 0; i < 64; ++i) ns.ntstore_persist(t, i * 64, buf);
      },
      hw::CrashPointHit);
  ASSERT_TRUE(session.tracing());
  EXPECT_NE(session.trace()->to_json().find("\"crash_point\""),
            std::string::npos);
  platform.clear_crash_trigger();
}

TEST(Session, SummaryJsonIsValidAndComplete) {
  Platform platform;
  telemetry::Session session(platform);
  seeded_run(platform, lat::Op::kNtStore);
  session.finish();
  const std::string j = session.summary_json();
  // Structural validity: balanced brackets outside strings, no bare
  // non-finite literals (JSON has no inf/nan).
  int depth = 0;
  bool in_string = false;
  for (std::size_t i = 0; i < j.size(); ++i) {
    const char c = j[i];
    if (in_string) {
      if (c == '\\') ++i;
      else if (c == '"') in_string = false;
      continue;
    }
    if (c == '"') in_string = true;
    else if (c == '{' || c == '[') ++depth;
    else if (c == '}' || c == ']') --depth;
    ASSERT_GE(depth, 0) << "unbalanced at byte " << i;
  }
  EXPECT_EQ(depth, 0);
  EXPECT_FALSE(in_string);
  EXPECT_EQ(j.find("inf"), std::string::npos);
  EXPECT_EQ(j.find("nan"), std::string::npos);
  for (const char* key :
       {"\"counters\"", "\"ewr\"", "\"persist_events\"",
        "\"buffer_evictions\"", "\"ait_misses\"", "\"timeline\"",
        "\"dimm_labels\"", "\"sample_interval_us\""})
    EXPECT_NE(j.find(key), std::string::npos) << "missing " << key;
  // Fault-free runs must not grow a media-fault section: the summary
  // format is byte-stable unless the injector was actually used.
  EXPECT_EQ(j.find("\"media_faults\""), std::string::npos);
}

TEST(Session, MediaFaultSectionAppearsOnlyWithFaults) {
  Platform platform;
  telemetry::Session session(
      platform, {.trace_path = ::testing::TempDir() + "fault_trace.json"});
  PmemNamespace& ns = platform.optane(16 << 20);
  ThreadCtx t({.id = 0, .socket = 0, .mlp = 8, .seed = 1});

  hw::FaultInjector injector(platform, /*seed=*/3);
  injector.poison(ns, 512);
  injector.poison(ns, 256);
  injector.poison(ns, 512);  // idempotent: no second kPoisoned event
  std::vector<std::uint8_t> buf(64);
  EXPECT_THROW(ns.load(t, 256, buf), hw::MediaError);
  platform.clear_media_fault();
  platform.reset_timing();
  const auto bad = platform.ars(ns, 0, ns.size());
  EXPECT_EQ(bad.size(), 2u);

  using hw::MediaFaultKind;
  EXPECT_EQ(session.media_fault_count(MediaFaultKind::kPoisoned), 2u);
  EXPECT_EQ(session.media_fault_count(MediaFaultKind::kUncorrectable), 1u);
  EXPECT_EQ(session.media_fault_count(MediaFaultKind::kScrubFound), 2u);
  // The ARS bad-line list is sorted and deduplicated even across repeated
  // scrubs of the same still-poisoned namespace.
  platform.ars(ns, 0, ns.size());
  ASSERT_EQ(session.ars_bad_lines().size(), 2u);
  EXPECT_EQ(session.ars_bad_lines()[0], 256u);
  EXPECT_EQ(session.ars_bad_lines()[1], 512u);

  session.finish();
  const std::string j = session.summary_json();
  EXPECT_NE(j.find("\"media_faults\""), std::string::npos);
  EXPECT_NE(j.find("\"poisoned\":2"), std::string::npos);
  EXPECT_NE(j.find("\"uncorrectable\":1"), std::string::npos);
  EXPECT_NE(j.find("\"ars_bad_lines\":[256,512]"), std::string::npos);
  // Chrome-trace instants carry the affected line offset.
  ASSERT_TRUE(session.tracing());
  const std::string trace = session.trace()->to_json();
  EXPECT_NE(trace.find("\"uncorrectable\""), std::string::npos);
  EXPECT_NE(trace.find("\"scrub_found\""), std::string::npos);
  EXPECT_NE(trace.find("\"line_off\":256"), std::string::npos);
}

// --------------------------------------------------------- sampler ------

TEST(Sampler, DecimationBoundsMemoryAndKeepsCoverage) {
  Platform platform;
  telemetry::Sampler sampler(platform, {.interval = sim::us(1),
                                        .capacity = 16});
  // Drive far more intervals than the ring holds.
  for (std::uint64_t us = 1; us <= 4096; ++us) sampler.tick(sim::us(us));
  EXPECT_LE(sampler.samples().size(), 16u);
  EXPECT_GE(sampler.samples().size(), 4u);
  EXPECT_GT(sampler.decimations(), 0u);
  EXPECT_GT(sampler.interval(), sim::us(1)) << "interval must coarsen";
  // The surviving timeline still spans the run.
  EXPECT_GE(sampler.samples().back().t, sim::us(2048));
}

TEST(Sampler, SamplesAreMonotone) {
  Platform platform;
  PmemNamespace& ns = platform.optane(16 << 20);
  ThreadCtx t({.id = 0, .socket = 0, .mlp = 8, .seed = 1});
  telemetry::Sampler sampler(platform, {.interval = sim::us(1),
                                        .capacity = 64});
  std::vector<std::uint8_t> buf(256, 3);
  for (int i = 0; i < 512; ++i) {
    ns.ntstore_persist(t, (i * 256) % (1 << 20), buf);
    sampler.tick(t.now());
  }
  const auto& samples = sampler.samples();
  ASSERT_GE(samples.size(), 2u);
  for (std::size_t i = 1; i < samples.size(); ++i) {
    EXPECT_GT(samples[i].t, samples[i - 1].t);
    ASSERT_EQ(samples[i].dimms.size(), samples[i - 1].dimms.size());
    for (std::size_t d = 0; d < samples[i].dimms.size(); ++d) {
      EXPECT_GE(samples[i].dimms[d].imc_write_bytes,
                samples[i - 1].dimms[d].imc_write_bytes);
      EXPECT_GE(samples[i].dimms[d].media_write_bytes,
                samples[i - 1].dimms[d].media_write_bytes);
      EXPECT_GE(samples[i].dimms[d].imc_read_bytes,
                samples[i - 1].dimms[d].imc_read_bytes);
      EXPECT_GE(samples[i].dimms[d].media_read_bytes,
                samples[i - 1].dimms[d].media_read_bytes);
    }
  }
}

TEST(Sampler, IgnoresNonMonotoneClocks) {
  // reset_timing() restarts thread clocks at zero on reused platforms;
  // the sampler must not record a sample that goes back in time.
  Platform platform;
  telemetry::Sampler sampler(platform, {.interval = sim::us(1),
                                        .capacity = 16});
  sampler.sample(sim::us(100));
  sampler.sample(sim::us(50));  // stale clock: ignored
  sampler.sample(sim::us(100));  // duplicate: ignored
  ASSERT_EQ(sampler.samples().size(), 1u);
  EXPECT_EQ(sampler.samples().back().t, sim::us(100));
}

// ----------------------------------------------------------- trace ------

TEST(Trace, WriterEmitsLoadableJson) {
  telemetry::TraceWriter w;
  w.name_process(0, "socket0");
  w.name_thread(0, 2, "channel2");
  w.instant("ait_miss", "xpdimm", sim::us(1), 0, 2);
  w.counter("queues", sim::us(2), 0, 2, "{\"wpq\":3,\"rpq\":1}");
  w.complete("lattester", "run", sim::us(1), sim::us(9), 0, 0);
  const std::string j = w.to_json();
  EXPECT_EQ(j.find("Infinity"), std::string::npos);
  EXPECT_NE(j.find("\"traceEvents\""), std::string::npos);
  EXPECT_NE(j.find("\"ph\":\"i\""), std::string::npos);
  EXPECT_NE(j.find("\"ph\":\"C\""), std::string::npos);
  EXPECT_NE(j.find("\"ph\":\"X\""), std::string::npos);
  EXPECT_NE(j.find("\"ph\":\"M\""), std::string::npos);
  EXPECT_NE(j.find("\"wpq\":3"), std::string::npos);
  // ts is microseconds with fixed 6-digit fraction: us(2) == 2.000000.
  EXPECT_NE(j.find("\"ts\":2.000000"), std::string::npos);
}

TEST(Trace, TruncationIsRecorded) {
  telemetry::TraceWriter w(/*max_events=*/4);
  for (int i = 0; i < 10; ++i)
    w.instant("e", "cat", sim::us(i), 0, 0);
  EXPECT_EQ(w.events(), 4u);
  EXPECT_EQ(w.dropped(), 6u);
  const std::string j = w.to_json();
  EXPECT_NE(j.find("trace_truncated"), std::string::npos);
  EXPECT_NE(j.find("\"dropped_events\":6"), std::string::npos);
}

TEST(Trace, SameSeedSameTraceBytes) {
  auto trace_once = [] {
    Platform platform(hw::Timing{}, /*seed=*/7);
    telemetry::Session session(
        platform,
        {.trace_path = ::testing::TempDir() + "determinism_trace.json"});
    seeded_run(platform, lat::Op::kMixed);
    session.finish();
    return session.trace()->to_json();
  };
  const std::string a = trace_once();
  const std::string b = trace_once();
  ASSERT_FALSE(a.empty());
  EXPECT_EQ(a, b) << "same seed must give byte-identical traces";
}

TEST(Trace, PointPathInsertsIndexBeforeExtension) {
  EXPECT_EQ(telemetry::trace_point_path("out/run.json", 7),
            "out/run.point0007.json");
  EXPECT_EQ(telemetry::trace_point_path("trace", 3), "trace.point0003");
  // A dot in a directory name is not an extension.
  EXPECT_EQ(telemetry::trace_point_path("a.b/trace", 0),
            "a.b/trace.point0000");
  EXPECT_EQ(telemetry::trace_point_path("", 5), "");
}

TEST(Trace, PathFromArgsAndEnvironment) {
  const char* argv1[] = {"bench", "--trace", "x.json"};
  EXPECT_EQ(telemetry::trace_path_from_args(3,
                                            const_cast<char**>(argv1)),
            "x.json");
  const char* argv2[] = {"bench", "--trace=y.json"};
  EXPECT_EQ(telemetry::trace_path_from_args(2,
                                            const_cast<char**>(argv2)),
            "y.json");
  const char* argv3[] = {"bench"};
  ASSERT_EQ(unsetenv("XP_TRACE"), 0);
  EXPECT_EQ(telemetry::trace_path_from_args(1,
                                            const_cast<char**>(argv3)),
            "");
  ASSERT_EQ(setenv("XP_TRACE", "env.json", 1), 0);
  EXPECT_EQ(telemetry::trace_path_from_args(1,
                                            const_cast<char**>(argv3)),
            "env.json");
  // An explicit argument wins over the environment.
  EXPECT_EQ(telemetry::trace_path_from_args(3,
                                            const_cast<char**>(argv1)),
            "x.json");
  unsetenv("XP_TRACE");
}

TEST(Trace, FileWriteRoundTrip) {
  Platform platform;
  const std::string path = ::testing::TempDir() + "roundtrip_trace.json";
  telemetry::Session session(platform, {.trace_path = path});
  seeded_run(platform, lat::Op::kNtStore);
  ASSERT_TRUE(session.finish());
  std::FILE* f = std::fopen(path.c_str(), "rb");
  ASSERT_NE(f, nullptr);
  std::string content;
  char buf[4096];
  std::size_t n;
  while ((n = std::fread(buf, 1, sizeof(buf), f)) > 0)
    content.append(buf, n);
  std::fclose(f);
  EXPECT_EQ(content, session.trace()->to_json());
  EXPECT_NE(content.find("ntstore_drain"), std::string::npos);
  std::remove(path.c_str());
}

}  // namespace
}  // namespace xp
