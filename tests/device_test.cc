// Device-level unit tests: Media (wear, migration stalls), AitCache,
// XpBuffer coalescing/EWR mechanics, XpDimm queues and stream trackers,
// DramDimm row buffers, and the UPI link.
#include <gtest/gtest.h>

#include "xpsim/dram_dimm.h"
#include "xpsim/media.h"
#include "xpsim/timing.h"
#include "xpsim/upi.h"
#include "xpsim/xpbuffer.h"
#include "xpsim/xpdimm.h"

namespace xp::hw {
namespace {

using sim::Time;

// ------------------------------------------------------------------ Media
TEST(Media, ReadOccupiesBank) {
  Timing t;
  Media media(t);
  XpCounters c;
  const auto g1 = media.read_line(0, 0, c);
  EXPECT_EQ(g1.start, 0u);
  EXPECT_EQ(g1.end, t.xp_media_read);
  EXPECT_EQ(c.media_read_bytes, t.xpline);
}

TEST(Media, BanksLimitThroughput) {
  Timing t;
  Media media(t);
  XpCounters c;
  // xp_banks requests run concurrently; the next one queues.
  for (unsigned i = 0; i < t.xp_banks; ++i) {
    EXPECT_EQ(media.read_line(0, i, c).start, 0u);
  }
  EXPECT_EQ(media.read_line(0, 99, c).start, t.xp_media_read);
}

TEST(Media, WearTriggersMigrationAndStall) {
  Timing t;
  t.wear_threshold = 4;
  Media media(t);
  XpCounters c;
  for (int i = 0; i < 3; ++i) media.write_line(0, 7, c);
  EXPECT_EQ(c.wear_migrations, 0u);
  EXPECT_EQ(media.stall_until(), 0u);
  media.write_line(0, 7, c);  // 4th write: migration
  EXPECT_EQ(c.wear_migrations, 1u);
  EXPECT_GE(media.stall_until(), t.wear_migration);
  // The controller gate delays requests during the stall.
  EXPECT_EQ(media.gate(0), media.stall_until());
  EXPECT_EQ(media.gate(media.stall_until() + 1), media.stall_until() + 1);
}

TEST(Media, WearIsPerLine) {
  Timing t;
  t.wear_threshold = 2;
  Media media(t);
  XpCounters c;
  media.write_line(0, 1, c);
  media.write_line(0, 2, c);
  EXPECT_EQ(c.wear_migrations, 0u);
  EXPECT_EQ(media.wear_of(1), 1u);
  EXPECT_EQ(media.wear_of(2), 1u);
  EXPECT_EQ(media.wear_of(3), 0u);
}

// --------------------------------------------------------------- AitCache
TEST(AitCache, LruEviction) {
  AitCache ait(2);
  EXPECT_FALSE(ait.access(1));
  EXPECT_FALSE(ait.access(2));
  EXPECT_TRUE(ait.access(1));   // 1 is now MRU
  EXPECT_FALSE(ait.access(3));  // evicts 2
  EXPECT_TRUE(ait.access(1));
  EXPECT_FALSE(ait.access(2));  // 2 was evicted
}

// ---------------------------------------------------------------- XpBuffer
struct BufferFixture : ::testing::Test {
  BufferFixture() : media(timing), buffer(timing, media) {}
  Timing timing;
  Media media;
  XpBuffer buffer;
  XpCounters c;
};

TEST_F(BufferFixture, CoalescesFullLineToOneMediaWrite) {
  // Four 64 B writes to one XPLine, then force eviction by filling the
  // buffer: exactly one 256 B media write.
  for (unsigned sub = 0; sub < 4; ++sub) buffer.write64(0, 0, sub, c);
  buffer.flush_all(sim::us(1), c);
  EXPECT_EQ(c.media_write_bytes, timing.xpline);
  EXPECT_EQ(c.evictions_full, 1u);
  EXPECT_EQ(c.evictions_partial, 0u);
}

TEST_F(BufferFixture, PartialEvictionIsRmw) {
  buffer.write64(0, 0, 0, c);  // one dirty sub-block
  buffer.flush_all(sim::us(1), c);
  EXPECT_EQ(c.evictions_partial, 1u);
  EXPECT_EQ(c.media_read_bytes, timing.xpline);   // the read of the RMW
  EXPECT_EQ(c.media_write_bytes, timing.xpline);
}

TEST_F(BufferFixture, FullRewriteFlushesPreviousVersion) {
  for (unsigned sub = 0; sub < 4; ++sub) buffer.write64(0, 0, sub, c);
  // Fifth write to the (fully dirty) line starts a fresh combining round
  // and pushes the old version to media.
  buffer.write64(sim::us(1), 0, 0, c);
  EXPECT_EQ(c.media_write_bytes, timing.xpline);
  EXPECT_EQ(buffer.occupancy(), 1u);
}

TEST_F(BufferFixture, ReadMissFetchesAndInstalls) {
  const Time done = buffer.read64(0, 5, c);
  EXPECT_GE(done, timing.xp_media_read);
  EXPECT_EQ(c.buffer_miss_reads, 1u);
  EXPECT_TRUE(buffer.contains(5));
  buffer.read64(done, 5, c);
  EXPECT_EQ(c.buffer_hit_reads, 1u);
}

TEST_F(BufferFixture, CapacityLruEviction) {
  for (std::uint64_t line = 0; line < timing.xpbuffer_lines; ++line)
    buffer.write64(line * 10, line, 0, c);
  EXPECT_EQ(buffer.occupancy(), timing.xpbuffer_lines);
  // One more allocation evicts the LRU entry (line 0).
  buffer.write64(sim::us(100), 9999, 0, c);
  EXPECT_FALSE(buffer.contains(0));
  EXPECT_TRUE(buffer.contains(9999));
  EXPECT_EQ(c.evictions_partial, 1u);
}

TEST_F(BufferFixture, ReadsCompeteForSpace) {
  // Fill the buffer with clean (read-installed) lines; a write allocation
  // evicts one of them for free.
  for (std::uint64_t line = 0; line < timing.xpbuffer_lines; ++line)
    buffer.read64(line, 1000 + line, c);
  buffer.write64(sim::us(100), 1, 0, c);
  EXPECT_EQ(c.evictions_clean, 1u);
  EXPECT_EQ(c.media_write_bytes, 0u);
}

// ------------------------------------------------------------------ XpDimm
TEST(XpDimm, WriteAckDecoupledFromMedia) {
  Timing t;
  XpDimm dimm(t);
  // An isolated 64 B write commits in well under the media write time.
  const Time ack = dimm.write64(0, 0, /*thread=*/0);
  EXPECT_LT(ack, t.xp_media_write);
  EXPECT_EQ(dimm.counters().imc_write_bytes, 64u);
}

TEST(XpDimm, PerThreadCreditLimitsPipelining) {
  Timing t;
  XpDimm dimm(t);
  // Issue many writes from one thread at t=0: the (k+1)-th write waits
  // for the k-credit-th ack, so acks space out.
  for (int i = 0; i < 12; ++i) dimm.write64(0, i * 64, 0);
  // A second thread is not blocked behind the first thread's credit
  // (writing into an already-open XPLine, so no allocation penalty),
  // while thread 0's next write must wait out its credit window.
  const Time other = dimm.write64(0, 0, /*thread=*/1);
  const Time thread0_next = dimm.write64(0, 12 * 64, /*thread=*/0);
  EXPECT_LT(other, thread0_next);
}

TEST(XpDimm, UntrackedStreamPaysAllocationPenalty) {
  Timing t;
  XpDimm dimm(t);
  // Warm the tracker with 4 writer threads.
  for (unsigned thr = 0; thr < 4; ++thr)
    dimm.write64(0, thr * 4096, thr);
  const Time tracked = dimm.write64(sim::us(2), 0 * 4096 + 256, 0) -
                       sim::us(2);
  // A 5th thread's allocation is untracked: slower.
  const Time untracked = dimm.write64(sim::us(4), 5 * 4096, 7) - sim::us(4);
  EXPECT_GT(untracked, tracked + t.xp_write_stream_miss / 2);
}

TEST(XpDimm, ReadLatencyBufferHitVsMiss) {
  Timing t;
  XpDimm dimm(t);
  const Time miss = dimm.read64(0, 0, 0);
  const Time t1 = sim::us(2);
  const Time hit = dimm.read64(t1, 64, 0) - t1;  // same XPLine
  EXPECT_GT(miss, hit * 2);
}

// ---------------------------------------------------------------- DramDimm
TEST(DramDimm, RowHitFasterThanMiss) {
  Timing t;
  DramDimm dimm(t);
  const Time miss = dimm.read64(0, 0);
  const Time t1 = sim::us(1);
  const Time hit = dimm.read64(t1, 64) - t1;  // same row
  EXPECT_GT(miss, hit);
  EXPECT_EQ(dimm.counters().row_hits, 1u);
  EXPECT_EQ(dimm.counters().row_misses, 1u);
}

TEST(DramDimm, PmepSlowdownScalesWrites) {
  Timing t;
  DramDimm fast(t);
  DramDimm slow(t);
  // The ack itself is queue-bound, but the drain occupies banks 8x
  // longer; hammer one bank and watch the WPQ back up.
  Time fast_last = 0, slow_last = 0;
  for (int i = 0; i < 200; ++i) {
    fast_last = fast.write64(0, 0, 1.0);
    slow_last = slow.write64(0, 0, 8.0);
  }
  EXPECT_GT(slow_last, fast_last);
}

// -------------------------------------------------------------------- UPI
TEST(Upi, TransfersSerializePerDirection) {
  Timing t;
  UpiLink upi(t);
  const Time a = upi.outbound(0, sim::ns(10));
  const Time b = upi.outbound(0, sim::ns(10));
  EXPECT_EQ(a, sim::ns(10));
  EXPECT_EQ(b, sim::ns(20));
  // Inbound is independent.
  EXPECT_EQ(upi.inbound(0, sim::ns(10)), sim::ns(10));
}

TEST(Upi, HoldBlocksLaterOutbound) {
  Timing t;
  UpiLink upi(t);
  upi.outbound(0, sim::ns(5));
  upi.hold_outbound(sim::us(1));
  EXPECT_GE(upi.outbound(sim::ns(10), sim::ns(5)), sim::us(1));
}

TEST(Upi, ResetClearsState) {
  Timing t;
  UpiLink upi(t);
  upi.hold_outbound(sim::ms(1));
  upi.reset_timing();
  EXPECT_EQ(upi.outbound(0, sim::ns(5)), sim::ns(5));
}

}  // namespace
}  // namespace xp::hw
