// Device-level unit tests: Media (wear, migration stalls), AitCache,
// XpBuffer coalescing/EWR mechanics, XpDimm queues and stream trackers,
// DramDimm row buffers, the UPI link, and the XPLine error model
// (poison, ECC transients, ARS, wear-out coupling).
#include <gtest/gtest.h>

#include <cstdint>
#include <numeric>
#include <vector>

#include "xpsim/dram_dimm.h"
#include "xpsim/fault.h"
#include "xpsim/media.h"
#include "xpsim/platform.h"
#include "xpsim/timing.h"
#include "xpsim/upi.h"
#include "xpsim/xpbuffer.h"
#include "xpsim/xpdimm.h"

namespace xp::hw {
namespace {

using sim::Time;
using sim::ThreadCtx;

ThreadCtx fault_thread() {
  return ThreadCtx({.id = 0, .socket = 0, .mlp = 8, .seed = 1});
}

std::vector<std::uint8_t> fill_bytes(std::size_t n, std::uint8_t v) {
  return std::vector<std::uint8_t>(n, v);
}

bool all_zero(const std::vector<std::uint8_t>& v) {
  return std::accumulate(v.begin(), v.end(), 0u) == 0u;
}

// ------------------------------------------------------------------ Media
TEST(Media, ReadOccupiesBank) {
  Timing t;
  Media media(t);
  XpCounters c;
  const auto g1 = media.read_line(0, 0, c);
  EXPECT_EQ(g1.start, 0u);
  EXPECT_EQ(g1.end, t.xp_media_read);
  EXPECT_EQ(c.media_read_bytes, t.xpline);
}

TEST(Media, BanksLimitThroughput) {
  Timing t;
  Media media(t);
  XpCounters c;
  // xp_banks requests run concurrently; the next one queues.
  for (unsigned i = 0; i < t.xp_banks; ++i) {
    EXPECT_EQ(media.read_line(0, i, c).start, 0u);
  }
  EXPECT_EQ(media.read_line(0, 99, c).start, t.xp_media_read);
}

TEST(Media, WearTriggersMigrationAndStall) {
  Timing t;
  t.wear_threshold = 4;
  Media media(t);
  XpCounters c;
  for (int i = 0; i < 3; ++i) media.write_line(0, 7, c);
  EXPECT_EQ(c.wear_migrations, 0u);
  EXPECT_EQ(media.stall_until(), 0u);
  media.write_line(0, 7, c);  // 4th write: migration
  EXPECT_EQ(c.wear_migrations, 1u);
  EXPECT_GE(media.stall_until(), t.wear_migration);
  // The controller gate delays requests during the stall.
  EXPECT_EQ(media.gate(0), media.stall_until());
  EXPECT_EQ(media.gate(media.stall_until() + 1), media.stall_until() + 1);
}

TEST(Media, WearIsPerLine) {
  Timing t;
  t.wear_threshold = 2;
  Media media(t);
  XpCounters c;
  media.write_line(0, 1, c);
  media.write_line(0, 2, c);
  EXPECT_EQ(c.wear_migrations, 0u);
  EXPECT_EQ(media.wear_of(1), 1u);
  EXPECT_EQ(media.wear_of(2), 1u);
  EXPECT_EQ(media.wear_of(3), 0u);
}

// --------------------------------------------------------------- AitCache
TEST(AitCache, LruEviction) {
  AitCache ait(2);
  EXPECT_FALSE(ait.access(1));
  EXPECT_FALSE(ait.access(2));
  EXPECT_TRUE(ait.access(1));   // 1 is now MRU
  EXPECT_FALSE(ait.access(3));  // evicts 2
  EXPECT_TRUE(ait.access(1));
  EXPECT_FALSE(ait.access(2));  // 2 was evicted
}

// ---------------------------------------------------------------- XpBuffer
struct BufferFixture : ::testing::Test {
  BufferFixture() : media(timing), buffer(timing, media) {}
  Timing timing;
  Media media;
  XpBuffer buffer;
  XpCounters c;
};

TEST_F(BufferFixture, CoalescesFullLineToOneMediaWrite) {
  // Four 64 B writes to one XPLine, then force eviction by filling the
  // buffer: exactly one 256 B media write.
  for (unsigned sub = 0; sub < 4; ++sub) buffer.write64(0, 0, sub, c);
  buffer.flush_all(sim::us(1), c);
  EXPECT_EQ(c.media_write_bytes, timing.xpline);
  EXPECT_EQ(c.evictions_full, 1u);
  EXPECT_EQ(c.evictions_partial, 0u);
}

TEST_F(BufferFixture, PartialEvictionIsRmw) {
  buffer.write64(0, 0, 0, c);  // one dirty sub-block
  buffer.flush_all(sim::us(1), c);
  EXPECT_EQ(c.evictions_partial, 1u);
  EXPECT_EQ(c.media_read_bytes, timing.xpline);   // the read of the RMW
  EXPECT_EQ(c.media_write_bytes, timing.xpline);
}

TEST_F(BufferFixture, FullRewriteFlushesPreviousVersion) {
  for (unsigned sub = 0; sub < 4; ++sub) buffer.write64(0, 0, sub, c);
  // Fifth write to the (fully dirty) line starts a fresh combining round
  // and pushes the old version to media.
  buffer.write64(sim::us(1), 0, 0, c);
  EXPECT_EQ(c.media_write_bytes, timing.xpline);
  EXPECT_EQ(buffer.occupancy(), 1u);
}

TEST_F(BufferFixture, ReadMissFetchesAndInstalls) {
  const Time done = buffer.read64(0, 5, c);
  EXPECT_GE(done, timing.xp_media_read);
  EXPECT_EQ(c.buffer_miss_reads, 1u);
  EXPECT_TRUE(buffer.contains(5));
  buffer.read64(done, 5, c);
  EXPECT_EQ(c.buffer_hit_reads, 1u);
}

TEST_F(BufferFixture, CapacityLruEviction) {
  for (std::uint64_t line = 0; line < timing.xpbuffer_lines; ++line)
    buffer.write64(line * 10, line, 0, c);
  EXPECT_EQ(buffer.occupancy(), timing.xpbuffer_lines);
  // One more allocation evicts the LRU entry (line 0).
  buffer.write64(sim::us(100), 9999, 0, c);
  EXPECT_FALSE(buffer.contains(0));
  EXPECT_TRUE(buffer.contains(9999));
  EXPECT_EQ(c.evictions_partial, 1u);
}

TEST_F(BufferFixture, ReadsCompeteForSpace) {
  // Fill the buffer with clean (read-installed) lines; a write allocation
  // evicts one of them for free.
  for (std::uint64_t line = 0; line < timing.xpbuffer_lines; ++line)
    buffer.read64(line, 1000 + line, c);
  buffer.write64(sim::us(100), 1, 0, c);
  EXPECT_EQ(c.evictions_clean, 1u);
  EXPECT_EQ(c.media_write_bytes, 0u);
}

// ------------------------------------------------------------------ XpDimm
TEST(XpDimm, WriteAckDecoupledFromMedia) {
  Timing t;
  XpDimm dimm(t);
  // An isolated 64 B write commits in well under the media write time.
  const Time ack = dimm.write64(0, 0, /*thread=*/0);
  EXPECT_LT(ack, t.xp_media_write);
  EXPECT_EQ(dimm.counters().imc_write_bytes, 64u);
}

TEST(XpDimm, PerThreadCreditLimitsPipelining) {
  Timing t;
  XpDimm dimm(t);
  // Issue many writes from one thread at t=0: the (k+1)-th write waits
  // for the k-credit-th ack, so acks space out.
  for (int i = 0; i < 12; ++i) dimm.write64(0, i * 64, 0);
  // A second thread is not blocked behind the first thread's credit
  // (writing into an already-open XPLine, so no allocation penalty),
  // while thread 0's next write must wait out its credit window.
  const Time other = dimm.write64(0, 0, /*thread=*/1);
  const Time thread0_next = dimm.write64(0, 12 * 64, /*thread=*/0);
  EXPECT_LT(other, thread0_next);
}

TEST(XpDimm, UntrackedStreamPaysAllocationPenalty) {
  Timing t;
  XpDimm dimm(t);
  // Warm the tracker with 4 writer threads.
  for (unsigned thr = 0; thr < 4; ++thr)
    dimm.write64(0, thr * 4096, thr);
  const Time tracked = dimm.write64(sim::us(2), 0 * 4096 + 256, 0) -
                       sim::us(2);
  // A 5th thread's allocation is untracked: slower.
  const Time untracked = dimm.write64(sim::us(4), 5 * 4096, 7) - sim::us(4);
  EXPECT_GT(untracked, tracked + t.xp_write_stream_miss / 2);
}

TEST(XpDimm, ReadLatencyBufferHitVsMiss) {
  Timing t;
  XpDimm dimm(t);
  const Time miss = dimm.read64(0, 0, 0);
  const Time t1 = sim::us(2);
  const Time hit = dimm.read64(t1, 64, 0) - t1;  // same XPLine
  EXPECT_GT(miss, hit * 2);
}

// ---------------------------------------------------------------- DramDimm
TEST(DramDimm, RowHitFasterThanMiss) {
  Timing t;
  DramDimm dimm(t);
  const Time miss = dimm.read64(0, 0);
  const Time t1 = sim::us(1);
  const Time hit = dimm.read64(t1, 64) - t1;  // same row
  EXPECT_GT(miss, hit);
  EXPECT_EQ(dimm.counters().row_hits, 1u);
  EXPECT_EQ(dimm.counters().row_misses, 1u);
}

TEST(DramDimm, PmepSlowdownScalesWrites) {
  Timing t;
  DramDimm fast(t);
  DramDimm slow(t);
  // The ack itself is queue-bound, but the drain occupies banks 8x
  // longer; hammer one bank and watch the WPQ back up.
  Time fast_last = 0, slow_last = 0;
  for (int i = 0; i < 200; ++i) {
    fast_last = fast.write64(0, 0, 1.0);
    slow_last = slow.write64(0, 0, 8.0);
  }
  EXPECT_GT(slow_last, fast_last);
}

// -------------------------------------------------------------------- UPI
TEST(Upi, TransfersSerializePerDirection) {
  Timing t;
  UpiLink upi(t);
  const Time a = upi.outbound(0, sim::ns(10));
  const Time b = upi.outbound(0, sim::ns(10));
  EXPECT_EQ(a, sim::ns(10));
  EXPECT_EQ(b, sim::ns(20));
  // Inbound is independent.
  EXPECT_EQ(upi.inbound(0, sim::ns(10)), sim::ns(10));
}

TEST(Upi, HoldBlocksLaterOutbound) {
  Timing t;
  UpiLink upi(t);
  upi.outbound(0, sim::ns(5));
  upi.hold_outbound(sim::us(1));
  EXPECT_GE(upi.outbound(sim::ns(10), sim::ns(5)), sim::us(1));
}

TEST(Upi, ResetClearsState) {
  Timing t;
  UpiLink upi(t);
  upi.hold_outbound(sim::ms(1));
  upi.reset_timing();
  EXPECT_EQ(upi.outbound(0, sim::ns(5)), sim::ns(5));
}

// -------------------------------------------------------------- MediaFault
TEST(MediaFault, PoisonedTimedReadThrowsAndImageIsClobbered) {
  Platform platform;
  PmemNamespace& ns = platform.optane(1 << 20);
  ThreadCtx t = fault_thread();
  const auto data = fill_bytes(Platform::kXpLineBytes, 0xab);
  ns.ntstore_persist(t, 1024, data);

  FaultInjector injector(platform);
  injector.poison(ns, 1024 + 64);  // any offset inside the line

  // The durable bytes are gone: an uncorrectable line has no data, so
  // untimed peeks see a deterministic clobber, never the stale payload.
  std::vector<std::uint8_t> img(Platform::kXpLineBytes);
  ns.peek(1024, img);
  EXPECT_NE(img, data);

  std::vector<std::uint8_t> out(64);
  try {
    ns.load(t, 1024, out);
    FAIL() << "poisoned read did not throw";
  } catch (const MediaError& e) {
    EXPECT_EQ(e.line_off, 1024u);
    EXPECT_EQ(e.socket, 0u);
  }
  EXPECT_EQ(ns.xp_counters().lines_poisoned, 1u);
  EXPECT_EQ(ns.xp_counters().uncorrectable_reads, 1u);
}

TEST(MediaFault, RfoStoreToPoisonedLineThrows) {
  // A sub-line store must read-for-ownership first, so it cannot merge
  // new bytes into a poisoned line silently — the fill takes the fault.
  Platform platform;
  PmemNamespace& ns = platform.optane(1 << 20);
  ThreadCtx t = fault_thread();
  FaultInjector injector(platform);
  injector.poison(ns, 2048);
  const auto data = fill_bytes(64, 0x11);
  EXPECT_THROW(ns.store(t, 2048, data), MediaError);
}

TEST(MediaFault, FullLineNtstoreClearsPoison) {
  Platform platform;
  PmemNamespace& ns = platform.optane(1 << 20);
  ThreadCtx t = fault_thread();
  FaultInjector injector(platform);
  injector.poison(ns, 512);
  ASSERT_TRUE(platform.line_poisoned(ns, 512));

  const auto fresh = fill_bytes(Platform::kXpLineBytes, 0x5a);
  ns.ntstore_persist(t, 512, fresh);  // 256 B overwrite re-establishes ECC
  EXPECT_FALSE(platform.line_poisoned(ns, 512));
  EXPECT_EQ(ns.xp_counters().poison_cleared, 1u);

  std::vector<std::uint8_t> out(Platform::kXpLineBytes);
  ns.load(t, 512, out);
  EXPECT_EQ(out, fresh);
}

TEST(MediaFault, PartialNtstoreRetainsPoison) {
  Platform platform;
  PmemNamespace& ns = platform.optane(1 << 20);
  ThreadCtx t = fault_thread();
  FaultInjector injector(platform);
  injector.poison(ns, 512);

  // 64 B of the 256 B XPLine: ECC cannot be re-established from a
  // partial write, the line stays bad.
  ns.ntstore(t, 512, fill_bytes(64, 0x5a));
  ns.sfence(t);
  EXPECT_TRUE(platform.line_poisoned(ns, 512));
  std::vector<std::uint8_t> out(64);
  EXPECT_THROW(ns.load(t, 512 + 128, out), MediaError);
}

TEST(MediaFault, PoisonDropsDirtyCachedCopies) {
  // Bytes dirty in the CPU cache above a line that fails are lost: the
  // poison clobber wins and a later flush of the dead line is a no-op.
  Platform platform;
  PmemNamespace& ns = platform.optane(1 << 20);
  ThreadCtx t = fault_thread();
  const auto data = fill_bytes(64, 0x77);
  ns.store(t, 4096, data);  // dirty in cache only

  FaultInjector injector(platform);
  injector.poison(ns, 4096);
  platform.crash();
  std::vector<std::uint8_t> out(64);
  ns.peek(4096, out);
  EXPECT_NE(out, data);
}

TEST(MediaFault, ArsReportsSortedBadLinesInRange) {
  Platform platform;
  PmemNamespace& ns = platform.optane(1 << 20);
  FaultInjector injector(platform);
  injector.poison(ns, 2048);
  injector.poison(ns, 256);
  injector.poison(ns, 1792);

  const auto all = platform.ars(ns, 0, ns.size());
  ASSERT_EQ(all.size(), 3u);
  EXPECT_EQ(all[0], 256u);
  EXPECT_EQ(all[1], 1792u);
  EXPECT_EQ(all[2], 2048u);
  // Range queries are clamped to [off, off+len).
  const auto low = platform.ars(ns, 0, 1024);
  ASSERT_EQ(low.size(), 1u);
  EXPECT_EQ(low[0], 256u);
  EXPECT_EQ(ns.xp_counters().lines_scrubbed, 4u);
}

TEST(MediaFault, EccTransientCorrectsExactlyOnce) {
  Platform platform;
  PmemNamespace& ns = platform.optane(1 << 20);
  ThreadCtx t = fault_thread();
  const auto data = fill_bytes(Platform::kXpLineBytes, 0x3c);
  ns.ntstore_persist(t, 0, data);  // bypasses cache: next load is a miss

  FaultInjector injector(platform);
  injector.mark_transient(ns, 0);
  std::vector<std::uint8_t> out(Platform::kXpLineBytes);
  ns.load(t, 0, out);
  EXPECT_EQ(out, data);  // corrected: data served normally
  EXPECT_EQ(ns.xp_counters().ecc_corrected, 1u);

  platform.crash();  // drop the cached copy so the next load refetches
  ns.load(t, 0, out);
  EXPECT_EQ(out, data);
  EXPECT_EQ(ns.xp_counters().ecc_corrected, 1u);  // one-shot event
}

TEST(MediaFault, WearCouplingFailsWornLine) {
  // A line whose AIT migration count crosses the configured threshold
  // goes uncorrectable on its next write (paper §2.1 lifetime limits).
  Timing timing;
  timing.wear_threshold = 8;
  Platform platform(timing);
  PmemNamespace& ns = platform.optane_ni(1 << 20);
  ThreadCtx t = fault_thread();
  FaultInjector injector(platform);
  injector.set_wear_fail_migrations(1);

  const auto sub = fill_bytes(64, 0x99);
  bool poisoned = false;
  // Partial (64 B) writes so the eventual poison is not immediately
  // cleared by a full-line overwrite. Cycling the four sub-blocks makes
  // the line fully dirty every fourth write, so the next write starts a
  // fresh combining round and pushes the old version to media — each
  // round is one media write accruing wear on the hot line.
  for (int i = 0; i < 20000 && !poisoned; ++i) {
    ns.ntstore(t, (i % 4) * 64, sub);
    ns.sfence(t);
    poisoned = platform.line_poisoned(ns, 0);
  }
  ASSERT_TRUE(poisoned) << "wear coupling never fired";
  EXPECT_GE(ns.xp_counters().wear_migrations, 1u);
  std::vector<std::uint8_t> out(64);
  EXPECT_THROW(ns.load(t, 0, out), MediaError);
}

TEST(MediaFault, PoisonMaterializesSparseImageLine) {
  // Poisoning a never-written line must materialize exactly that line in
  // the sparse backing image: its peek shows the clobber while untouched
  // neighbours keep reading back as zeros.
  Platform platform;
  PmemNamespace& ns = platform.optane(16 << 20);
  const std::uint64_t off = 1 << 20;
  FaultInjector injector(platform);
  injector.poison(ns, off);

  std::vector<std::uint8_t> line(Platform::kXpLineBytes);
  ns.peek(off, line);
  EXPECT_FALSE(all_zero(line));
  ns.peek(off + Platform::kXpLineBytes, line);
  EXPECT_TRUE(all_zero(line));
  ns.peek(off - Platform::kXpLineBytes, line);
  EXPECT_TRUE(all_zero(line));

  // Healing the line by full overwrite makes it readable again.
  ThreadCtx t = fault_thread();
  const auto fresh = fill_bytes(Platform::kXpLineBytes, 0xe1);
  ns.ntstore_persist(t, off, fresh);
  std::vector<std::uint8_t> out(Platform::kXpLineBytes);
  ns.load(t, off, out);
  EXPECT_EQ(out, fresh);
}

TEST(MediaFault, PartialBufferEvictionOfHealedLineKeepsData) {
  // XPBuffer partial-line evictions RMW against the media image; after a
  // poison + full-line heal, the merged result must be the healed bytes
  // (stale pre-poison data must not resurface through the buffer).
  Platform platform;
  PmemNamespace& ns = platform.optane(1 << 20);
  ThreadCtx t = fault_thread();
  ns.ntstore_persist(t, 0, fill_bytes(Platform::kXpLineBytes, 0xaa));

  FaultInjector injector(platform);
  injector.poison(ns, 0);
  ns.ntstore_persist(t, 0, fill_bytes(Platform::kXpLineBytes, 0xbb));

  // One dirty 64 B sub-block, then force it out through the buffer: the
  // eviction is a partial RMW against the healed line.
  ns.ntstore(t, 64, fill_bytes(64, 0xcc));
  ns.sfence(t);
  platform.crash();  // drains buffers; durable image is the merge

  std::vector<std::uint8_t> out(Platform::kXpLineBytes);
  ns.peek(0, out);
  std::vector<std::uint8_t> want(Platform::kXpLineBytes, 0xbb);
  std::fill(want.begin() + 64, want.begin() + 128, 0xcc);
  EXPECT_EQ(out, want);
}

TEST(MediaFault, ArmedInjectorFiresOnExactReadIndex) {
  Platform platform;
  PmemNamespace& ns = platform.optane(1 << 20);
  ThreadCtx t = fault_thread();
  ns.ntstore_persist(t, 0, fill_bytes(4096, 1));

  FaultInjector injector(platform);
  injector.arm_nth_device_read(3);
  std::vector<std::uint8_t> out(64);
  // Each load of a fresh line is one device read (cache misses).
  ns.load(t, 0, out);
  ns.load(t, 256, out);
  EXPECT_FALSE(platform.media_fault_fired());
  EXPECT_THROW(ns.load(t, 512, out), MediaError);
  EXPECT_TRUE(platform.media_fault_fired());
  EXPECT_TRUE(platform.line_poisoned(ns, 512));

  // The machine check models process death: the platform is frozen until
  // the fault is acknowledged, then the poisoned line is still bad.
  platform.clear_media_fault();
  platform.reset_timing();
  EXPECT_THROW(ns.load(t, 512, out), MediaError);
}

}  // namespace
}  // namespace xp::hw
