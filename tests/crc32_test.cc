// The dispatched CRC32C kernel must be bit-exact against the reference
// byte-at-a-time table loop — whichever kernel the runtime dispatcher
// picked on this host (SSE4.2, ARMv8 crc, or slice-by-8).
#include <gtest/gtest.h>

#include <cstdint>
#include <random>
#include <vector>

#include "sim/crc32.h"

namespace xp::sim {
namespace {

TEST(Crc32c, KnownCheckValue) {
  // The standard CRC-32C check vector.
  const char digits[] = "123456789";
  EXPECT_EQ(crc32c(digits, 9), 0xE3069283u);
}

TEST(Crc32c, EmptyInput) {
  EXPECT_EQ(crc32c(nullptr, 0), 0u);
  EXPECT_EQ(crc32c(nullptr, 0, 0xdeadbeefu), 0xdeadbeefu);
  EXPECT_EQ(crc32c_reference({}, 0xdeadbeefu), 0xdeadbeefu);
}

TEST(Crc32c, DispatchedMatchesReference) {
  std::mt19937_64 rng(7);
  for (int trial = 0; trial < 200; ++trial) {
    const std::size_t n = rng() % 2048;
    std::vector<std::uint8_t> data(n);
    for (auto& b : data) b = static_cast<std::uint8_t>(rng());
    const auto seed = static_cast<std::uint32_t>(rng());
    EXPECT_EQ(crc32c(data, seed), crc32c_reference(data, seed))
        << "impl=" << crc32c_impl_name() << " len=" << n;
  }
}

TEST(Crc32c, MisalignedSpansMatchReference) {
  // The SSE4.2/ARMv8 kernels consume 8 bytes at a time; make sure odd
  // starting alignments and tails agree with the reference.
  std::vector<std::uint8_t> data(256);
  for (std::size_t i = 0; i < data.size(); ++i)
    data[i] = static_cast<std::uint8_t>(i * 131 + 17);
  for (std::size_t off = 0; off < 9; ++off)
    for (std::size_t len : {0u, 1u, 7u, 8u, 9u, 63u, 64u, 65u, 200u}) {
      std::span<const std::uint8_t> s(data.data() + off, len);
      EXPECT_EQ(crc32c(s), crc32c_reference(s)) << off << "+" << len;
    }
}

TEST(Crc32c, IncrementalMatchesOneShot) {
  std::mt19937_64 rng(11);
  std::vector<std::uint8_t> data(1500);
  for (auto& b : data) b = static_cast<std::uint8_t>(rng());
  const std::uint32_t whole = crc32c(data);

  for (int trial = 0; trial < 32; ++trial) {
    std::uint32_t crc = 0;
    std::size_t pos = 0;
    while (pos < data.size()) {
      const std::size_t chunk =
          std::min<std::size_t>(1 + rng() % 97, data.size() - pos);
      crc = crc32c(std::span<const std::uint8_t>(data.data() + pos, chunk),
                   crc);
      pos += chunk;
    }
    EXPECT_EQ(crc, whole);
  }
}

TEST(Crc32c, SliceBy8MatchesReference) {
  // The portable fallback must agree even when the host dispatches to a
  // hardware kernel.
  std::mt19937_64 rng(13);
  for (int trial = 0; trial < 50; ++trial) {
    const std::size_t n = rng() % 777;
    std::vector<std::uint8_t> data(n);
    for (auto& b : data) b = static_cast<std::uint8_t>(rng());
    const auto seed = static_cast<std::uint32_t>(rng());
    EXPECT_EQ(~detail::crc32c_slice8_raw(~seed, data.data(), n),
              crc32c_reference(data, seed));
  }
}

TEST(Crc32c, ImplNameIsKnown) {
  const std::string name = crc32c_impl_name();
  EXPECT_TRUE(name == "sse4.2" || name == "armv8-crc" || name == "slice8")
      << name;
}

}  // namespace
}  // namespace xp::sim
