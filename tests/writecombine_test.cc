// The shared write-combining layer (pmem::LineBatcher) and its store
// deployments: lsmkv WAL group commit, novafs batched log appends, and
// the pmemkv per-DIMM writer cap. Includes the EWR regression gate: the
// per-record flex WAL measures heavy write amplification on small
// records, the group-commit path must bring it to ~1.0 (§5.1/§5.2).
#include <gtest/gtest.h>

#include <cstring>
#include <string>
#include <vector>

#include "lsmkv/db.h"
#include "novafs/novafs.h"
#include "pmemkv/cmap.h"
#include "pmemlib/linebatch.h"
#include "sim/scheduler.h"
#include "telemetry/registry.h"
#include "xpsim/platform.h"

namespace xp {
namespace {

using hw::Platform;
using hw::PmemNamespace;
using sim::ThreadCtx;

ThreadCtx make_thread(unsigned id = 0) {
  return ThreadCtx({.id = id, .socket = 0, .mlp = 8, .seed = id + 1});
}

// The XP write-combining buffers retain dirty lines; short workloads fit
// entirely inside them and would under-report media writes. Flush every
// DIMM before the final snapshot so EWR reflects what reaches media.
void drain_xp_buffers(Platform& p, sim::Time t) {
  for (unsigned s = 0; s < p.timing().sockets; ++s)
    for (unsigned c = 0; c < p.timing().channels_per_socket; ++c) {
      auto& d = p.xp_dimm(s, c);
      d.buffer().flush_all(t, d.counters());
    }
}

// ------------------------------------------------------------ batcher ---

TEST(LineBatcher, StagesAndWritesContiguously) {
  Platform platform;
  auto& ns = platform.optane(16 << 20);
  ThreadCtx t = make_thread();

  pmem::LineBatcher b;
  b.reset(4096);
  EXPECT_TRUE(b.empty());
  std::vector<std::uint8_t> rec1(300, 0x11), rec2(45, 0x22);
  EXPECT_EQ(b.append(rec1), 0u);
  EXPECT_EQ(b.append(rec2), 300u);
  const std::uint32_t word = 0xabcd1234;
  EXPECT_EQ(b.append_pod(word), 345u);
  EXPECT_EQ(b.append_zeros(7), 349u);
  EXPECT_EQ(b.size(), 356u);
  EXPECT_EQ(b.cursor(), 4096u + 356u);
  b.commit(t, ns, /*hold=*/4);
  ns.sfence(t);

  std::vector<std::uint8_t> got(356);
  ns.load(t, 4096, got);
  EXPECT_EQ(std::memcmp(got.data(), rec1.data(), 300), 0);
  EXPECT_EQ(std::memcmp(got.data() + 300, rec2.data(), 45), 0);
  std::uint32_t w = 0;
  std::memcpy(&w, got.data() + 345, 4);
  EXPECT_EQ(w, word);
  for (int i = 0; i < 7; ++i) EXPECT_EQ(got[349 + i], 0u);
}

TEST(LineBatcher, ResetReusesCapacityAndRebases) {
  Platform platform;
  auto& ns = platform.optane(16 << 20);
  ThreadCtx t = make_thread();

  pmem::LineBatcher b;
  b.reset(0);
  b.append_zeros(1000);
  b.flush(t, ns);
  ns.sfence(t);
  b.reset(8192);
  EXPECT_TRUE(b.empty());
  EXPECT_EQ(b.base(), 8192u);
  const std::uint64_t v = 42;
  b.append_pod(v);
  b.commit(t, ns);
  ns.sfence(t);
  EXPECT_EQ(ns.load_pod<std::uint64_t>(t, 8192), 42u);
}

// ------------------------------------------------------- lsmkv groups ---

kv::DbOptions group_opts(bool group) {
  kv::DbOptions o;
  o.wal = kv::WalMode::kFlex;
  o.wal_group_commit = group;
  o.wal_group_size = 8;
  return o;
}

TEST(WalGroupCommit, GroupReplaysLikePerRecordAppends) {
  Platform platform;
  auto& ns = platform.optane(64 << 20);
  kv::DbOptions opts;
  ThreadCtx t = make_thread();

  kv::Wal wal(ns, 0, 1 << 20, kv::WalMode::kFlex, opts);
  wal.truncate(t);
  std::vector<kv::WalRecord> recs = {
      {"alpha", "1", false},
      {"beta", std::string_view(std::string(300, 'b')), false},
      {"alpha", "", true},
  };
  std::string big(300, 'b');
  recs[1].value = big;
  wal.append_group(t, recs, true);
  wal.append_group(t, std::vector<kv::WalRecord>{{"gamma", "3", false}},
                   true);

  std::vector<std::tuple<std::string, std::string, bool>> got;
  kv::Wal replayer(ns, 0, 1 << 20, kv::WalMode::kFlex, opts);
  replayer.replay(t, [&](std::string_view k, std::string_view v, bool tomb) {
    got.emplace_back(std::string(k), std::string(v), tomb);
  });
  ASSERT_EQ(got.size(), 4u);
  EXPECT_EQ(got[0], std::make_tuple(std::string("alpha"), std::string("1"),
                                    false));
  EXPECT_EQ(got[1], std::make_tuple(std::string("beta"), big, false));
  EXPECT_EQ(got[2],
            std::make_tuple(std::string("alpha"), std::string(""), true));
  EXPECT_EQ(got[3], std::make_tuple(std::string("gamma"), std::string("3"),
                                    false));
}

TEST(WalGroupCommit, PutBatchSurvivesCrash) {
  Platform platform;
  auto& ns = platform.optane(256 << 20);
  ThreadCtx t = make_thread();
  {
    kv::Db db(ns, group_opts(true));
    db.create(t);
    std::vector<kv::WalRecord> batch;
    std::vector<std::string> keys, vals;
    for (int i = 0; i < 20; ++i) {
      keys.push_back("bk" + std::to_string(i));
      vals.push_back("bv" + std::to_string(i));
    }
    for (int i = 0; i < 20; ++i)
      batch.push_back({keys[i], vals[i], false});
    db.put_batch(t, batch);
    platform.crash();
  }
  kv::Db db(ns, group_opts(true));
  ASSERT_TRUE(db.open(t));
  for (int i = 0; i < 20; ++i) {
    std::string v;
    ASSERT_TRUE(db.get(t, "bk" + std::to_string(i), &v)) << i;
    EXPECT_EQ(v, "bv" + std::to_string(i));
  }
}

TEST(WalGroupCommit, LeaderCommitsWhenGroupFills) {
  Platform platform;
  auto& ns = platform.optane(256 << 20);
  ThreadCtx t = make_thread();
  kv::Db db(ns, group_opts(true));
  db.create(t);
  for (int i = 0; i < 7; ++i)
    db.put(t, "k" + std::to_string(i), "v");
  EXPECT_EQ(db.pending_records(), 7u);  // buffered, group not yet full
  db.put(t, "k7", "v");                 // the leader: fills the group
  EXPECT_EQ(db.pending_records(), 0u);

  db.put(t, "tail", "v");
  EXPECT_EQ(db.pending_records(), 1u);
  db.commit_pending(t);  // explicit durability point
  EXPECT_EQ(db.pending_records(), 0u);
}

TEST(WalGroupCommit, CommittedGroupsSurviveCrashUnackedDoNot) {
  Platform platform;
  auto& ns = platform.optane(256 << 20);
  ThreadCtx t = make_thread();
  {
    kv::Db db(ns, group_opts(true));
    db.create(t);
    for (int i = 0; i < 8; ++i)
      db.put(t, "g" + std::to_string(i), "v");  // full group: committed
    db.put(t, "pending", "v");  // buffered, never acknowledged
    EXPECT_EQ(db.pending_records(), 1u);
    platform.crash();
  }
  kv::Db db(ns, group_opts(true));
  ASSERT_TRUE(db.open(t));
  std::string v;
  for (int i = 0; i < 8; ++i)
    EXPECT_TRUE(db.get(t, "g" + std::to_string(i), &v)) << i;
  // A record that was never acknowledged may legitimately be gone — and
  // after a crash before any group commit it must be gone.
  EXPECT_FALSE(db.get(t, "pending", &v));
}

// The regression gate from the paper's §5.1/§5.2: dribbling small
// records with a fence each defeats the XP combining buffer (EWR well
// above 1), one coalesced burst per group restores EWR ~ 1.0.
TEST(WalGroupCommit, GroupCommitFixesWriteAmplification) {
  auto measure = [](bool group) {
    Platform platform;
    auto& ns = platform.optane(256 << 20);
    ThreadCtx t = make_thread();
    kv::DbOptions opts;
    kv::Wal wal(ns, 0, 8 << 20, kv::WalMode::kFlex, opts);
    wal.truncate(t);
    platform.reset_timing();
    const auto s0 = telemetry::Snapshot::capture(platform);
    const std::string value(24, 'v');
    char key[16];
    if (group) {
      std::vector<std::string> keys(32);
      std::vector<kv::WalRecord> recs(32);
      for (int g = 0; g < 2000 / 32; ++g) {
        for (int i = 0; i < 32; ++i) {
          std::snprintf(key, sizeof key, "k%06d", g * 32 + i);
          keys[i] = key;
          recs[i] = {keys[i], value, false};
        }
        wal.append_group(t, recs, true);
      }
    } else {
      for (int i = 0; i < 2000; ++i) {
        std::snprintf(key, sizeof key, "k%06d", i);
        wal.append(t, key, value, false, true);
      }
    }
    t.drain();
    drain_xp_buffers(platform, t.now());
    const auto d = telemetry::Snapshot::capture(platform) - s0;
    return d.xp_total().ewr();
  };

  const double per_record = measure(false);
  const double grouped = measure(true);
  EXPECT_GE(per_record, 2.0) << "per-record path lost its amplification";
  EXPECT_LE(grouped, 1.1) << "group commit failed to restore EWR ~ 1.0";
}

// Flags-off runs must be bit-identical run to run (the byte-identical-
// tables guarantee rests on this determinism).
TEST(WalGroupCommit, FlagsOffTelemetryDeterministic) {
  auto run = [] {
    Platform platform;
    auto& ns = platform.optane(256 << 20);
    ThreadCtx t = make_thread();
    kv::Db db(ns, kv::DbOptions{});  // all defaults: combining off
    db.create(t);
    for (int i = 0; i < 200; ++i)
      db.put(t, "k" + std::to_string(i), std::string(40, 'v'));
    t.drain();
    drain_xp_buffers(platform, t.now());
    const auto s = telemetry::Snapshot::capture(platform);
    const auto total = s.xp_total();
    return std::make_tuple(total.imc_write_bytes, total.media_write_bytes,
                           total.imc_read_bytes, t.now());
  };
  EXPECT_EQ(run(), run());
}

// ------------------------------------------------------ novafs batches ---

TEST(NovafsBatch, BatchedWritesReadBackIdentical) {
  auto build = [](bool batched, std::vector<std::uint8_t>* content) {
    Platform platform;
    auto& ns = platform.optane(128 << 20);
    ThreadCtx t = make_thread();
    nova::NovaOptions o;
    o.datalog = true;
    o.batch_log_appends = batched;
    nova::NovaFs fs(ns, o);
    fs.format(t);
    const int ino = fs.create(t, "f");
    std::vector<std::uint8_t> buf(3072);
    for (int i = 0; i < 40; ++i) {
      for (std::size_t j = 0; j < buf.size(); ++j)
        buf[j] = static_cast<std::uint8_t>(i * 7 + j);
      // Straddles a page boundary: two embedded sub-page entries per op.
      fs.write(t, ino, 2560 + static_cast<std::uint64_t>(i) * 4096, buf);
    }
    EXPECT_EQ(fs.fsck(t).ok(), true);
    content->resize(fs.size(t, ino));
    fs.read(t, ino, 0, *content);
    return fs.size(t, ino);
  };
  std::vector<std::uint8_t> stock, combined;
  const auto size_stock = build(false, &stock);
  const auto size_batched = build(true, &combined);
  EXPECT_EQ(size_stock, size_batched);
  EXPECT_EQ(stock, combined);
}

TEST(NovafsBatch, BatchedWritesSurviveCrashAndRemount) {
  Platform platform;
  auto& ns = platform.optane(128 << 20);
  ThreadCtx t = make_thread();
  nova::NovaOptions o;
  o.datalog = true;
  o.batch_log_appends = true;
  std::vector<std::uint8_t> buf(3072, 0x5a);
  {
    nova::NovaFs fs(ns, o);
    fs.format(t);
    const int ino = fs.create(t, "f");
    for (int i = 0; i < 10; ++i)
      fs.write(t, ino, 2560 + static_cast<std::uint64_t>(i) * 4096, buf);
    fs.fsync(t, ino);
    platform.crash();
  }
  nova::NovaFs fs(ns, o);
  ASSERT_TRUE(fs.mount(t));
  EXPECT_TRUE(fs.fsck(t).ok());
  const int ino = fs.open(t, "f");
  ASSERT_GE(ino, 0);
  std::vector<std::uint8_t> got(3072);
  for (int i = 0; i < 10; ++i) {
    fs.read(t, ino, 2560 + static_cast<std::uint64_t>(i) * 4096, got);
    EXPECT_EQ(got, buf) << "write " << i;
  }
}

TEST(NovafsBatch, RenameBatchSurvivesRemount) {
  Platform platform;
  auto& ns = platform.optane(64 << 20);
  ThreadCtx t = make_thread();
  nova::NovaOptions o;
  o.batch_log_appends = true;
  {
    nova::NovaFs fs(ns, o);
    fs.format(t);
    fs.create(t, "old-name");
    ASSERT_TRUE(fs.rename(t, "old-name", "new-name"));
    platform.crash();
  }
  nova::NovaFs fs(ns, o);
  ASSERT_TRUE(fs.mount(t));
  EXPECT_LT(fs.open(t, "old-name"), 0);
  EXPECT_GE(fs.open(t, "new-name"), 0);
}

// ------------------------------------------------------- pmemkv lanes ---

TEST(CMapWriterCap, CappedMapIsFunctionallyIdentical) {
  auto build = [](unsigned cap) {
    Platform platform;
    auto& ns = platform.optane(256 << 20);
    pmem::Pool pool(ns);
    pmemkv::CMap map(pool, {.max_writers_per_dimm = cap});
    ThreadCtx t = make_thread();
    pool.create(t, 64);
    map.create(t);
    for (int i = 0; i < 500; ++i)
      map.put(t, "key" + std::to_string(i), std::string(64, 'a' + i % 7));
    EXPECT_TRUE(map.check(t).ok());
    std::vector<std::string> values;
    for (int i = 0; i < 500; ++i) {
      std::string v;
      EXPECT_TRUE(map.get(t, "key" + std::to_string(i), &v));
      values.push_back(std::move(v));
    }
    return values;
  };
  EXPECT_EQ(build(0), build(4));
}

// On a single DIMM with more threads than the 4-entry stream tracker
// holds, funneling writes through 4 lanes must not be slower than the
// unthrottled rotation that misses the tracker on every new line.
TEST(CMapWriterCap, CapHelpsContendedSingleDimm) {
  auto run = [](unsigned cap) {
    Platform platform;
    auto& ns = platform.optane_ni(256 << 20, 0);
    pmem::Pool pool(ns);
    pmemkv::CMap map(pool, {.max_writers_per_dimm = cap});
    {
      ThreadCtx t = make_thread(100);
      pool.create(t, 64);
      map.create(t);
      for (int i = 0; i < 400; ++i)
        map.put(t, "key" + std::to_string(i), std::string(512, 'x'));
    }
    platform.reset_timing();
    map.reset_admission();
    std::uint64_t ops = 0;
    sim::Time end = 0;
    sim::Scheduler sched;
    for (unsigned j = 0; j < 12; ++j) {
      sched.spawn({.id = j, .socket = 0, .mlp = 16, .seed = j + 5},
                  [&](ThreadCtx& ctx) {
                    if (ctx.now() >= sim::us(200)) {
                      if (ctx.now() > end) end = ctx.now();
                      return false;
                    }
                    const int k = static_cast<int>(ctx.rng().uniform(400));
                    map.put(ctx, "key" + std::to_string(k),
                            std::string(512, 'y'));
                    ++ops;
                    return true;
                  });
    }
    sched.run();
    return ops;
  };
  const std::uint64_t uncapped = run(0);
  const std::uint64_t capped = run(4);
  EXPECT_GE(capped, uncapped);
}

TEST(CMapWriterCap, ResetAdmissionClearsStaleEpochTimes) {
  Platform platform;
  auto& ns = platform.optane_ni(64 << 20, 0);
  pmem::Pool pool(ns);
  pmemkv::CMap map(pool, {.max_writers_per_dimm = 2});
  ThreadCtx t0 = make_thread(0);
  pool.create(t0, 64);
  map.create(t0);
  for (int i = 0; i < 50; ++i)
    map.put(t0, "k" + std::to_string(i), std::string(64, 'x'));
  const sim::Time old_epoch_end = t0.now();

  platform.reset_timing();
  map.reset_admission();
  // A fresh epoch's thread starts at time 0; stale lane-busy times from
  // the old epoch would have stalled it to ~old_epoch_end.
  ThreadCtx t1 = make_thread(1);
  map.put(t1, "k0", std::string(64, 'y'));
  EXPECT_LT(t1.now(), old_epoch_end);
  std::string v;
  EXPECT_TRUE(map.get(t1, "k0", &v));
  EXPECT_EQ(v, std::string(64, 'y'));
}

}  // namespace
}  // namespace xp
