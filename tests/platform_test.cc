// Unit + property tests for the platform model: data correctness across
// all store kinds, persistence/crash semantics, interleaving, EWR
// mechanics, queue backpressure, and NUMA paths.
#include <gtest/gtest.h>

#include <cstring>
#include <numeric>
#include <vector>

#include "xpsim/cache.h"
#include "xpsim/interleave.h"
#include "xpsim/platform.h"

namespace xp::hw {
namespace {

using sim::ThreadCtx;
using sim::Time;

ThreadCtx make_thread(unsigned id = 0, unsigned socket = 0,
                      unsigned mlp = 1) {
  return ThreadCtx({.id = id, .socket = socket, .mlp = mlp, .seed = id + 1});
}

std::vector<std::uint8_t> pattern_bytes(std::size_t n, unsigned seed = 0) {
  std::vector<std::uint8_t> v(n);
  for (std::size_t i = 0; i < n; ++i)
    v[i] = static_cast<std::uint8_t>(i * 37 + seed * 11 + 1);
  return v;
}

// ------------------------------------------------------------- interleave
TEST(Interleave, FourKbChunksRotateChannels) {
  InterleaveDecoder dec(6, 4096);
  EXPECT_EQ(dec.decode(0).channel, 0u);
  EXPECT_EQ(dec.decode(4096).channel, 1u);
  EXPECT_EQ(dec.decode(5 * 4096).channel, 5u);
  EXPECT_EQ(dec.decode(6 * 4096).channel, 0u);  // stripe wraps
  EXPECT_EQ(dec.stripe(), 24u * 1024);
}

TEST(Interleave, WithinChunkStaysOnOneDimm) {
  InterleaveDecoder dec(6, 4096);
  const unsigned ch = dec.decode(8192).channel;
  for (std::uint64_t o = 0; o < 4096; o += 64)
    EXPECT_EQ(dec.decode(8192 + o).channel, ch);
}

TEST(Interleave, RoundTripBijection) {
  InterleaveDecoder dec(6, 4096);
  for (std::uint64_t off = 0; off < 1 << 20; off += 4093) {
    const DimmAddr da = dec.decode(off);
    EXPECT_EQ(dec.encode(da), off);
  }
}

TEST(Interleave, DimmLocalAddressesAreDense) {
  InterleaveDecoder dec(6, 4096);
  // Consecutive stripes map to consecutive DIMM-local chunks.
  EXPECT_EQ(dec.decode(0).addr, 0u);
  EXPECT_EQ(dec.decode(6 * 4096).addr, 4096u);
  EXPECT_EQ(dec.decode(12 * 4096 + 100).addr, 2u * 4096 + 100);
}

// ------------------------------------------------------------- cache unit
TEST(CacheModel, InsertFindErase) {
  CacheModel cache(16, 1);
  CacheCounters cc;
  CacheModel::LineData d{};
  d[0] = 42;
  EXPECT_FALSE(cache.insert(64, d, true, cc).has_value());
  ASSERT_NE(cache.find(64), nullptr);
  EXPECT_EQ(cache.find(64)[0], 42);
  EXPECT_TRUE(cache.is_dirty(64));
  auto victim = cache.erase(64);
  ASSERT_TRUE(victim.has_value());
  EXPECT_TRUE(victim->dirty);
  EXPECT_EQ(cache.find(64), nullptr);
}

TEST(CacheModel, EraseCleanReturnsNothing) {
  CacheModel cache(16, 1);
  CacheCounters cc;
  cache.insert(0, {}, false, cc);
  EXPECT_FALSE(cache.erase(0).has_value());
}

TEST(CacheModel, CapacityEviction) {
  CacheModel cache(4, 1);
  CacheCounters cc;
  for (std::uint64_t i = 0; i < 4; ++i)
    EXPECT_FALSE(cache.insert(i * 64, {}, true, cc).has_value());
  auto victim = cache.insert(5 * 64, {}, true, cc);
  ASSERT_TRUE(victim.has_value());
  EXPECT_EQ(cache.size(), 4u);
  EXPECT_EQ(cc.natural_evictions, 1u);
}

TEST(CacheModel, ReinsertDoesNotEvict) {
  CacheModel cache(2, 1);
  CacheCounters cc;
  cache.insert(0, {}, false, cc);
  cache.insert(64, {}, false, cc);
  EXPECT_FALSE(cache.insert(64, {}, true, cc).has_value());
  EXPECT_TRUE(cache.is_dirty(64));
}

TEST(CacheModel, DropAllCountsDirty) {
  CacheModel cache(8, 1);
  CacheCounters cc;
  cache.insert(0, {}, true, cc);
  cache.insert(64, {}, false, cc);
  cache.insert(128, {}, true, cc);
  std::size_t dirty = 0;
  EXPECT_EQ(cache.drop_all(&dirty), 3u);
  EXPECT_EQ(dirty, 2u);
  EXPECT_EQ(cache.size(), 0u);
}

// --------------------------------------------------- read-your-write (P)
struct RywParam {
  const char* mode;  // "store", "ntstore", "store_flush"
  std::size_t size;
  std::uint64_t offset;
};

class ReadYourWrite : public ::testing::TestWithParam<RywParam> {};

TEST_P(ReadYourWrite, DataRoundTrips) {
  const RywParam p = GetParam();
  Platform platform;
  PmemNamespace& ns = platform.optane(64 << 20);
  ThreadCtx t = make_thread(0, 0, 8);

  const auto data = pattern_bytes(p.size, 3);
  if (std::strcmp(p.mode, "store") == 0) {
    ns.store(t, p.offset, data);
  } else if (std::strcmp(p.mode, "ntstore") == 0) {
    ns.ntstore(t, p.offset, data);
    ns.sfence(t);
  } else {
    ns.store_persist(t, p.offset, data);
  }
  std::vector<std::uint8_t> out(p.size);
  ns.load(t, p.offset, out);
  EXPECT_EQ(out, data);
}

INSTANTIATE_TEST_SUITE_P(
    SizesAndAlignments, ReadYourWrite,
    ::testing::Values(
        RywParam{"store", 1, 0}, RywParam{"store", 8, 4},
        RywParam{"store", 64, 0}, RywParam{"store", 64, 32},
        RywParam{"store", 100, 20}, RywParam{"store", 256, 0},
        RywParam{"store", 4096, 64}, RywParam{"store", 5000, 123},
        RywParam{"ntstore", 64, 0}, RywParam{"ntstore", 256, 0},
        RywParam{"ntstore", 17, 3}, RywParam{"ntstore", 4096, 0},
        RywParam{"ntstore", 1000, 200}, RywParam{"store_flush", 64, 0},
        RywParam{"store_flush", 300, 60}, RywParam{"store_flush", 8192, 0}));

TEST(ReadYourWriteMore, OverwriteMixedModes) {
  Platform platform;
  PmemNamespace& ns = platform.optane(1 << 20);
  ThreadCtx t = make_thread();
  const auto a = pattern_bytes(512, 1);
  const auto b = pattern_bytes(512, 2);
  ns.store_persist(t, 1000, a);
  ns.ntstore(t, 1000, b);  // ntstore over dirty cached data
  ns.sfence(t);
  std::vector<std::uint8_t> out(512);
  ns.load(t, 1000, out);
  EXPECT_EQ(out, b);
}

TEST(ReadYourWriteMore, NtstorePreservesNeighborBytes) {
  Platform platform;
  PmemNamespace& ns = platform.optane(1 << 20);
  ThreadCtx t = make_thread();
  const auto base = pattern_bytes(64, 1);
  ns.store_persist(t, 0, base);
  // Overwrite bytes 16..31 with ntstore; the rest of the line must keep
  // the earlier (cached, dirty at the time) contents.
  const auto mid = pattern_bytes(16, 9);
  ns.ntstore(t, 16, mid);
  ns.sfence(t);
  std::vector<std::uint8_t> out(64);
  ns.load(t, 0, out);
  for (int i = 0; i < 16; ++i) EXPECT_EQ(out[i], base[i]) << i;
  for (int i = 16; i < 32; ++i) EXPECT_EQ(out[i], mid[i - 16]) << i;
  for (int i = 32; i < 64; ++i) EXPECT_EQ(out[i], base[i]) << i;
}

// ------------------------------------------------------------ persistence
TEST(Persistence, UnflushedStoreLostOnCrash) {
  Platform platform;
  PmemNamespace& ns = platform.optane(1 << 20);
  ThreadCtx t = make_thread();
  const auto data = pattern_bytes(64, 5);
  ns.store(t, 0, data);  // dirty in cache only
  EXPECT_GT(platform.crash(), 0u);
  std::vector<std::uint8_t> out(64);
  ns.peek(0, out);
  EXPECT_EQ(std::accumulate(out.begin(), out.end(), 0), 0);
}

TEST(Persistence, FlushedStoreSurvivesCrash) {
  Platform platform;
  PmemNamespace& ns = platform.optane(1 << 20);
  ThreadCtx t = make_thread();
  const auto data = pattern_bytes(64, 6);
  ns.store_persist(t, 0, data);
  platform.crash();
  std::vector<std::uint8_t> out(64);
  ns.peek(0, out);
  EXPECT_EQ(out, data);
}

TEST(Persistence, NtstoreSurvivesCrash) {
  Platform platform;
  PmemNamespace& ns = platform.optane(1 << 20);
  ThreadCtx t = make_thread();
  const auto data = pattern_bytes(128, 7);
  ns.ntstore(t, 256, data);
  ns.sfence(t);
  platform.crash();
  std::vector<std::uint8_t> out(128);
  ns.peek(256, out);
  EXPECT_EQ(out, data);
}

TEST(Persistence, ClflushoptAlsoPersists) {
  Platform platform;
  PmemNamespace& ns = platform.optane(1 << 20);
  ThreadCtx t = make_thread();
  const auto data = pattern_bytes(64, 8);
  ns.store(t, 512, data);
  ns.clflushopt(t, 512, 64);
  ns.sfence(t);
  platform.crash();
  std::vector<std::uint8_t> out(64);
  ns.peek(512, out);
  EXPECT_EQ(out, data);
}

TEST(Persistence, PartialFlushPartialSurvival) {
  Platform platform;
  PmemNamespace& ns = platform.optane(1 << 20);
  ThreadCtx t = make_thread();
  const auto data = pattern_bytes(128, 9);
  ns.store(t, 0, data);
  ns.persist(t, 0, 64);  // flush only the first line
  platform.crash();
  std::vector<std::uint8_t> out(128);
  ns.peek(0, out);
  for (int i = 0; i < 64; ++i) EXPECT_EQ(out[i], data[i]) << i;
  for (int i = 64; i < 128; ++i) EXPECT_EQ(out[i], 0) << i;
}

TEST(Persistence, LoadAfterCrashSeesDurableImage) {
  Platform platform;
  PmemNamespace& ns = platform.optane(1 << 20);
  ThreadCtx t = make_thread();
  const auto data = pattern_bytes(64, 10);
  ns.store(t, 0, data);  // cached dirty
  platform.crash();
  std::vector<std::uint8_t> out(64);
  ThreadCtx t2 = make_thread(1);
  ns.load(t2, 0, out);
  EXPECT_EQ(std::accumulate(out.begin(), out.end(), 0), 0);
}

// -------------------------------------------------------------- EWR basic
TEST(Ewr, SequentialNtStoresNearUnity) {
  Platform platform;
  PmemNamespace& ns = platform.optane_ni(16 << 20);
  ThreadCtx t = make_thread(0, 0, 8);
  const auto data = pattern_bytes(256, 1);
  for (std::uint64_t off = 0; off + 256 <= (4 << 20); off += 256)
    ns.ntstore(t, off, data);
  ns.sfence(t);
  const XpCounters c = ns.xp_counters();
  EXPECT_GT(c.ewr(), 0.9);
  EXPECT_LT(c.ewr(), 1.1);
}

TEST(Ewr, Random64ByteNtStoresQuarter) {
  Platform platform;
  PmemNamespace& ns = platform.optane_ni(256 << 20);
  ThreadCtx t = make_thread(0, 0, 8);
  const auto data = pattern_bytes(64, 1);
  sim::Rng rng(17);
  for (int i = 0; i < 40000; ++i) {
    const std::uint64_t off = rng.uniform((256 << 20) / 64) * 64;
    ns.ntstore(t, off, data);
  }
  ns.sfence(t);
  const XpCounters c = ns.xp_counters();
  EXPECT_NEAR(c.ewr(), 0.25, 0.05);
}

TEST(Ewr, Random256ByteNtStoresNearUnity) {
  Platform platform;
  PmemNamespace& ns = platform.optane_ni(256 << 20);
  ThreadCtx t = make_thread(0, 0, 8);
  const auto data = pattern_bytes(256, 1);
  sim::Rng rng(23);
  for (int i = 0; i < 20000; ++i) {
    const std::uint64_t off = rng.uniform((256 << 20) / 256) * 256;
    ns.ntstore(t, off, data);
  }
  ns.sfence(t);
  EXPECT_GT(ns.xp_counters().ewr(), 0.9);
}

TEST(Ewr, PlainStoreStreamLosesSequentiality) {
  // Store-only streaming through the cache shuffles write-back order and
  // destroys XPBuffer locality (paper §5.2: EWR 0.26 vs 0.98).
  Platform platform;
  PmemNamespace& ns = platform.optane_ni(256 << 20);
  ThreadCtx t = make_thread(0, 0, 8);
  const auto data = pattern_bytes(256, 1);
  // Stream 160 MB: enough to overflow the 32 MB cache and reach steady
  // state of natural evictions.
  for (std::uint64_t off = 0; off + 256 <= (160ull << 20); off += 256)
    ns.store(t, off, data);
  const XpCounters c = ns.xp_counters();
  EXPECT_LT(c.ewr(), 0.45);
}

// --------------------------------------------------------------- counters
TEST(Counters, ImcWriteBytesMatchFlushedLines) {
  Platform platform;
  PmemNamespace& ns = platform.optane(1 << 20);
  ThreadCtx t = make_thread();
  const auto data = pattern_bytes(256, 1);
  ns.ntstore(t, 0, data);
  ns.sfence(t);
  const XpCounters c = ns.xp_counters();
  EXPECT_EQ(c.imc_write_bytes, 256u);
}

TEST(Counters, ReadsCountImcBytes) {
  Platform platform;
  PmemNamespace& ns = platform.optane(1 << 20);
  ThreadCtx t = make_thread();
  std::vector<std::uint8_t> out(1024);
  ns.load(t, 0, out);
  EXPECT_EQ(ns.xp_counters().imc_read_bytes, 1024u);
  // Second load hits the CPU cache: no more DIMM traffic.
  ns.load(t, 0, out);
  EXPECT_EQ(ns.xp_counters().imc_read_bytes, 1024u);
}

// ----------------------------------------------------------------- timing
TEST(TimingSanity, CacheHitFasterThanMiss) {
  Platform platform;
  PmemNamespace& ns = platform.optane(1 << 20);
  ThreadCtx t = make_thread();
  std::vector<std::uint8_t> out(64);
  const Time t0 = t.now();
  ns.load(t, 0, out);
  t.drain();
  const Time miss = t.now() - t0;
  const Time t1 = t.now();
  ns.load(t, 0, out);
  t.drain();
  const Time hit = t.now() - t1;
  EXPECT_LT(hit * 5, miss);
}

TEST(TimingSanity, RemoteLoadSlowerThanLocal) {
  Platform platform;
  PmemNamespace& ns = platform.optane(16 << 20, /*socket=*/0);
  ThreadCtx local = make_thread(0, 0);
  ThreadCtx remote = make_thread(1, 1);
  std::vector<std::uint8_t> out(64);

  const Time l0 = local.now();
  ns.load(local, 0, out);
  local.drain();
  const Time local_lat = local.now() - l0;

  const Time r0 = remote.now();
  ns.load(remote, 64 * 1024, out);
  remote.drain();
  const Time remote_lat = remote.now() - r0;

  EXPECT_GT(remote_lat, local_lat + sim::ns(40));
}

TEST(TimingSanity, DramFasterThanOptane) {
  Platform platform;
  PmemNamespace& xpns = platform.optane(16 << 20);
  PmemNamespace& dramns = platform.dram(16 << 20);
  ThreadCtx t = make_thread();
  std::vector<std::uint8_t> out(64);

  const Time t0 = t.now();
  dramns.load(t, 1 << 20, out);
  t.drain();
  const Time dram_lat = t.now() - t0;

  const Time t1 = t.now();
  xpns.load(t, 1 << 20, out);
  t.drain();
  const Time xp_lat = t.now() - t1;

  EXPECT_GT(xp_lat, dram_lat * 2);
}

TEST(TimingSanity, PmepAddsLoadLatency) {
  Platform platform;
  PmemNamespace& dramns = platform.dram(16 << 20);
  PmemNamespace& pmepns = platform.pmep(16 << 20);
  ThreadCtx t = make_thread();
  std::vector<std::uint8_t> out(64);

  const Time t0 = t.now();
  dramns.load(t, 0, out);
  t.drain();
  const Time dram_lat = t.now() - t0;

  const Time t1 = t.now();
  pmepns.load(t, 0, out);
  t.drain();
  const Time pmep_lat = t.now() - t1;

  EXPECT_NEAR(sim::to_ns(pmep_lat), sim::to_ns(dram_lat) + 300.0, 30.0);
}

// -------------------------------------------------------- wear / tail lat
TEST(Wear, MigrationTriggersAtThreshold) {
  Timing timing;
  timing.wear_threshold = 64;  // small threshold to hit quickly
  Platform platform(timing);
  PmemNamespace& ns = platform.optane_ni(1 << 20);
  ThreadCtx t = make_thread(0, 0, 8);
  const auto data = pattern_bytes(256, 1);
  // Hammer a single XPLine; every write evicts (buffer recycles quickly
  // due to repeated overwrites + eventual aging).
  for (int i = 0; i < 64 * 300; ++i) {
    ns.ntstore(t, 0, data);
    ns.sfence(t);
    // Touch another line so the hot line eventually drains.
    ns.ntstore(t, 4096 + (i % 64) * 256, data);
    ns.sfence(t);
  }
  EXPECT_GT(ns.xp_counters().wear_migrations, 0u);
}

// --------------------------------------------------------- namespaces etc
TEST(Namespace, PeekPokeBypassTiming) {
  Platform platform;
  PmemNamespace& ns = platform.optane(1 << 20);
  const auto data = pattern_bytes(100, 4);
  ns.poke(50, data);
  std::vector<std::uint8_t> out(100);
  ns.peek(50, out);
  EXPECT_EQ(out, data);
}

TEST(Namespace, SeparateNamespacesDontAlias) {
  Platform platform;
  PmemNamespace& a = platform.optane(1 << 20);
  PmemNamespace& b = platform.optane_ni(1 << 20);
  ThreadCtx t = make_thread();
  const auto da = pattern_bytes(64, 1);
  const auto db = pattern_bytes(64, 2);
  a.store_persist(t, 0, da);
  b.store_persist(t, 0, db);
  std::vector<std::uint8_t> out(64);
  a.load(t, 0, out);
  EXPECT_EQ(out, da);
  b.load(t, 0, out);
  EXPECT_EQ(out, db);
}

TEST(Namespace, PodHelpers) {
  Platform platform;
  PmemNamespace& ns = platform.optane(1 << 20);
  ThreadCtx t = make_thread();
  ns.store_pod<std::uint64_t>(t, 128, 0xdeadbeefcafef00dULL);
  EXPECT_EQ(ns.load_pod<std::uint64_t>(t, 128), 0xdeadbeefcafef00dULL);
}

TEST(Namespace, CrossSocketCoherence) {
  Platform platform;
  PmemNamespace& ns = platform.optane(1 << 20);
  ThreadCtx t0 = make_thread(0, 0);
  ThreadCtx t1 = make_thread(1, 1);
  const auto data = pattern_bytes(64, 3);
  ns.store(t0, 0, data);  // dirty in socket-0 cache
  std::vector<std::uint8_t> out(64);
  ns.load(t1, 0, out);    // socket 1 must see socket 0's dirty data
  EXPECT_EQ(out, data);
}

TEST(Namespace, WritebackAllCachesMakesDurable) {
  Platform platform;
  PmemNamespace& ns = platform.optane(1 << 20);
  ThreadCtx t = make_thread();
  const auto data = pattern_bytes(64, 12);
  ns.store(t, 0, data);
  platform.writeback_all_caches();
  platform.crash();
  std::vector<std::uint8_t> out(64);
  ns.peek(0, out);
  EXPECT_EQ(out, data);
}

}  // namespace
}  // namespace xp::hw
