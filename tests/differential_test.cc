// Differential fuzz oracle: seeded randomized op sequences run against
// every store family (through StoreIface) and, in lockstep, against an
// in-memory std::map reference model. Any divergence — a get returning
// the wrong value/existence, a del misreporting, a scan out of order or
// with stale data, a post-reopen mismatch — fails with the (seed, ops)
// pair, after shrinking to the smallest failing prefix so the repro is
// as short as possible. Sequences are pure functions of the seed, so a
// reported pair replays exactly.
#include <cstdio>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "workload/shard.h"
#include "workload/store_iface.h"
#include "workload/ycsb.h"
#include "xpsim/platform.h"

namespace xp {
namespace {

struct DiffCfg {
  const char* label;
  workload::StoreKind kind;
  workload::StoreTuning tuning{};
  unsigned shards = 1;  // > 1: run through the sharded frontend
};

// 48 keys, all <= 16 bytes (stree caps at 31): small enough that every
// op sequence revisits keys and exercises overwrite/delete/reinsert.
constexpr unsigned kKeys = 48;

std::string pick_key(workload::XorShift& rng) {
  return workload::key_name(rng.uniform(kKeys));
}

std::string pick_value(workload::XorShift& rng, std::uint64_t version) {
  return workload::make_value(rng.uniform(kKeys), version,
                              1 + rng.uniform(120));
}

// Runs `nops` ops of the seeded sequence against a fresh store and the
// model. Returns "" on agreement, else a description of the first
// divergence. The op stream depends only on (seed), so running a prefix
// replays the same ops.
std::string run_sequence(const DiffCfg& cfg, std::uint64_t seed,
                         unsigned nops) {
  hw::Platform platform;
  const auto ns = workload::ShardedStore::make_namespaces(
      platform, cfg.shards, 48ull << 20);
  workload::ShardOptions so;
  so.kind = cfg.kind;
  so.tuning = cfg.tuning;
  auto make = [&] {
    return std::make_unique<workload::ShardedStore>(ns, so);
  };
  auto store = make();

  sim::ThreadCtx ctx({.id = 0, .socket = 0, .mlp = 8, .seed = 7});
  store->create(ctx);

  std::map<std::string, std::string> model;
  workload::XorShift rng(workload::mix64(seed) | 1);
  std::string got;
  auto fail = [&](unsigned op, const std::string& what) {
    return "op " + std::to_string(op) + " [" + cfg.label +
           " seed=" + std::to_string(seed) + "]: " + what;
  };

  for (unsigned op = 0; op < nops; ++op) {
    const std::uint64_t r = rng.uniform(100);
    if (r < 35) {  // put
      const std::string k = pick_key(rng);
      const std::string v = pick_value(rng, op);
      store->put(ctx, k, v);
      model[k] = v;
    } else if (r < 55) {  // get
      const std::string k = pick_key(rng);
      store->flush_pending(ctx);  // group commits must not hide writes
      const bool found = store->get(ctx, k, &got);
      const bool want = model.count(k) > 0;
      if (found != want)
        return fail(op, "get(" + k + ") found=" + std::to_string(found) +
                            " want " + std::to_string(want));
      if (found && got != model[k])
        return fail(op, "get(" + k + ") value mismatch: got " + got +
                            " want " + model[k]);
    } else if (r < 70) {  // del
      const std::string k = pick_key(rng);
      const bool found = store->del(ctx, k);
      const bool want = model.erase(k) > 0;
      if (store->del_reports_found() && found != want)
        return fail(op, "del(" + k + ") found=" + std::to_string(found) +
                            " want " + std::to_string(want));
    } else if (r < 80) {  // scan
      const std::string start = pick_key(rng);
      const std::size_t n = 1 + rng.uniform(12);
      if (store->supports_scan()) {
        store->flush_pending(ctx);
        const auto rows = store->scan(ctx, start, n);
        auto it = model.lower_bound(start);
        std::size_t i = 0;
        for (; i < rows.size(); ++i, ++it) {
          if (it == model.end())
            return fail(op, "scan(" + start + ") returned extra row " +
                                rows[i].first);
          if (rows[i].first != it->first || rows[i].second != it->second)
            return fail(op, "scan(" + start + ") row " + std::to_string(i) +
                                ": got " + rows[i].first + " want " +
                                it->first);
        }
        if (rows.size() < n && it != model.end())
          return fail(op, "scan(" + start + ") stopped early: " +
                              std::to_string(rows.size()) + " rows, model has " +
                              it->first + " next");
      }
    } else if (r < 90) {  // read-modify-write
      const std::string k = pick_key(rng);
      store->flush_pending(ctx);
      std::string v;
      if (store->get(ctx, k, &v) != (model.count(k) > 0))
        return fail(op, "rmw-read(" + k + ") existence mismatch");
      v = pick_value(rng, op);
      store->put(ctx, k, v);
      model[k] = v;
    } else {  // batched dispatch: 2-5 ops committed as one group
      const std::size_t n = 2 + rng.uniform(4);
      std::vector<workload::BatchOp> batch;
      for (std::size_t i = 0; i < n; ++i) {
        workload::BatchOp b;
        b.key = pick_key(rng);
        b.del = rng.uniform(4) == 0;
        if (!b.del) b.value = pick_value(rng, op);
        batch.push_back(std::move(b));
      }
      store->apply_batch(ctx, batch);
      for (const auto& b : batch) {
        if (b.del)
          model.erase(b.key);
        else
          model[b.key] = b.value;
      }
    }
    // Donate deferred-compaction turns so background mode is exercised
    // mid-sequence, not just via the stall gate.
    if (cfg.tuning.background_compaction && op % 32 == 31)
      store->background_turn(ctx);
    if (op % 64 == 63) {
      const Status s = store->check(ctx);
      if (!s.ok()) return fail(op, "check failed: " + s.message());
    }
  }

  // Full-state sweep over the whole key space.
  store->flush_pending(ctx);
  for (unsigned i = 0; i < kKeys; ++i) {
    const std::string k = workload::key_name(i);
    const bool found = store->get(ctx, k, &got);
    const bool want = model.count(k) > 0;
    if (found != want)
      return fail(nops, "final get(" + k + ") found=" +
                            std::to_string(found) + " want " +
                            std::to_string(want));
    if (found && got != model[k])
      return fail(nops, "final get(" + k + ") value mismatch");
  }
  {
    const Status s = store->check(ctx);
    if (!s.ok()) return fail(nops, "final check failed: " + s.message());
  }

  // Reopen from persistent state with a fresh frontend and re-sweep:
  // recovery must reconstruct exactly the model's view.
  store.reset();
  auto again = make();
  sim::ThreadCtx ctx2({.id = 1, .socket = 0, .mlp = 8, .seed = 9});
  if (!again->open(ctx2)) return fail(nops, "reopen failed");
  for (unsigned i = 0; i < kKeys; ++i) {
    const std::string k = workload::key_name(i);
    const bool found = again->get(ctx2, k, &got);
    const bool want = model.count(k) > 0;
    if (found != want)
      return fail(nops, "post-reopen get(" + k + ") found=" +
                            std::to_string(found) + " want " +
                            std::to_string(want));
    if (found && got != model[k])
      return fail(nops, "post-reopen get(" + k + ") value mismatch");
  }
  {
    const Status s = again->check(ctx2);
    if (!s.ok()) return fail(nops, "post-reopen check: " + s.message());
  }
  return "";
}

// On failure, shrink: binary-search the smallest failing prefix of the
// (deterministic) sequence so the reported repro is minimal.
void run_and_shrink(const DiffCfg& cfg, std::uint64_t seed, unsigned nops) {
  const std::string err = run_sequence(cfg, seed, nops);
  if (err.empty()) return;
  unsigned lo = 0, hi = nops;  // invariant: prefix `hi` fails
  std::string at_hi = err;
  while (lo + 1 < hi) {
    const unsigned mid = lo + (hi - lo) / 2;
    const std::string e = run_sequence(cfg, seed, mid);
    if (e.empty()) {
      lo = mid;
    } else {
      hi = mid;
      at_hi = e;
    }
  }
  FAIL() << "differential divergence, shrunk to " << hi << "/" << nops
         << " ops: " << at_hi
         << "\nreplay: run_sequence({" << cfg.label << "}, " << seed << ", "
         << hi << ")";
}

workload::StoreTuning knobs_on() {
  workload::StoreTuning t;
  t.write_combine = true;
  t.read_path = true;
  t.read_cache_lines = 512;
  return t;
}

workload::StoreTuning lsmkv_full() {
  workload::StoreTuning t = knobs_on();
  t.background_compaction = true;
  t.memtable_bytes = 4 << 10;  // force flush/compaction churn mid-run
  return t;
}

class Differential : public testing::TestWithParam<DiffCfg> {};

TEST_P(Differential, StoreMatchesModel) {
  for (std::uint64_t seed : {1ull, 42ull}) run_and_shrink(GetParam(), seed, 320);
}

INSTANTIATE_TEST_SUITE_P(
    AllFamilies, Differential,
    testing::Values(
        DiffCfg{"lsmkv-stock", workload::StoreKind::kLsmkv},
        DiffCfg{"lsmkv-knobs", workload::StoreKind::kLsmkv, knobs_on()},
        DiffCfg{"lsmkv-bg", workload::StoreKind::kLsmkv, lsmkv_full()},
        DiffCfg{"lsmkv-sharded", workload::StoreKind::kLsmkv, lsmkv_full(), 3},
        DiffCfg{"cmap-stock", workload::StoreKind::kCmap},
        DiffCfg{"cmap-knobs", workload::StoreKind::kCmap, knobs_on()},
        DiffCfg{"stree-stock", workload::StoreKind::kStree},
        DiffCfg{"stree-knobs", workload::StoreKind::kStree, knobs_on()},
        DiffCfg{"stree-sharded", workload::StoreKind::kStree, knobs_on(), 2},
        DiffCfg{"nova-stock", workload::StoreKind::kNova},
        DiffCfg{"nova-knobs", workload::StoreKind::kNova, knobs_on()}),
    [](const testing::TestParamInfo<DiffCfg>& info) {
      std::string n = info.param.label;
      for (char& c : n)
        if (c == '-') c = '_';
      return n;
    });

}  // namespace
}  // namespace xp
