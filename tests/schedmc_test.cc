// Schedule-exploration (schedmc) tests: the linearizability oracle on
// hand-built histories (positive and negative), deterministic schedule
// exploration across all four store families, crash composition
// (crash × interleaving), and the seeded lock-elision regression the
// oracle must catch.
#include <gtest/gtest.h>

#include <map>
#include <string>
#include <vector>

#include "schedmc/explorer.h"
#include "schedmc/history.h"
#include "schedmc/interleave.h"
#include "schedmc/targets.h"
#include "telemetry/session.h"
#include "xpsim/platform.h"

namespace xp::schedmc {
namespace {

using State = std::map<std::string, std::string>;

// ------------------------------------------------------------ checker ----

TEST(HistoryChecker, AcceptsSequentialHistory) {
  History h;
  const auto p = h.invoke(0, OpKind::kPut, "a", "1");
  h.stage_write(p);
  h.respond(p);
  const auto g = h.invoke(1, OpKind::kGet, "a");
  h.respond(g, true, "1");
  const State fin{{"a", "1"}};
  const CheckResult cr = check_history(h.ops(), &fin, false);
  EXPECT_TRUE(cr.ok) << cr.detail;
}

TEST(HistoryChecker, AcceptsConcurrentReadOfEitherValue) {
  // A get overlapping a put may see the old or the new value.
  for (const char* seen : {"0", "1"}) {
    History h;
    const auto p0 = h.invoke(0, OpKind::kPut, "a", "0");
    h.stage_write(p0);
    h.respond(p0);
    const auto g = h.invoke(1, OpKind::kGet, "a");  // overlaps the next put
    const auto p1 = h.invoke(0, OpKind::kPut, "a", "1");
    h.stage_write(p1);
    h.respond(p1);
    h.respond(g, true, seen);
    const State fin{{"a", "1"}};
    const CheckResult cr = check_history(h.ops(), &fin, false);
    EXPECT_TRUE(cr.ok) << "seen=" << seen << ": " << cr.detail;
  }
}

// The negative test the ISSUE asks for: a lost update — two increments
// both observed the same old value — has no sequential order and must be
// rejected.
TEST(HistoryChecker, RejectsLostUpdate) {
  History h;
  const auto r0 = h.invoke(0, OpKind::kRmw, "ctr");
  h.stage_write(r0, true, "0", "1");
  const auto r1 = h.invoke(1, OpKind::kRmw, "ctr");
  h.stage_write(r1, true, "0", "1");
  h.respond(r0, true, "0");
  h.respond(r1, true, "0");
  const State init{{"ctr", "0"}};
  const State fin{{"ctr", "1"}};
  const CheckResult cr = check_history(h.ops(), &fin, false, &init);
  EXPECT_FALSE(cr.ok) << "lost update accepted:\n" << format_history(h.ops());
}

TEST(HistoryChecker, RejectsStaleRead) {
  // get responded after the put completed (real-time edge) yet saw the
  // old value.
  History h;
  const auto p = h.invoke(0, OpKind::kPut, "a", "new");
  h.stage_write(p);
  h.respond(p);
  const auto g = h.invoke(1, OpKind::kGet, "a");
  h.respond(g, true, "old");
  const State init{{"a", "old"}};
  const State fin{{"a", "new"}};
  EXPECT_FALSE(check_history(h.ops(), &fin, false, &init).ok);
}

TEST(HistoryChecker, CrashModeDropsUnstagedOps) {
  // A put that never reached its write phase must be excludable; the
  // recovered state without it is fine.
  History h;
  const auto p = h.invoke(0, OpKind::kPut, "a", "1");  // no stage, no respond
  (void)p;
  const State recovered{};
  EXPECT_TRUE(check_history(h.ops(), &recovered, true).ok);
}

TEST(HistoryChecker, CrashModeRequiresAcknowledgedOps) {
  History h;
  const auto p = h.invoke(0, OpKind::kPut, "a", "1");
  h.stage_write(p);
  h.respond(p);
  h.mark_must_include(p);  // durability was acknowledged
  const State recovered{};  // ...but the value is gone
  EXPECT_FALSE(check_history(h.ops(), &recovered, true).ok);
}

TEST(HistoryChecker, CrashModeGroupsAreAtomic) {
  // Two staged puts in one group-commit window: recovery may keep both
  // or neither, never exactly one.
  for (const bool keep_a : {false, true}) {
    for (const bool keep_b : {false, true}) {
      History h;
      const auto a = h.invoke(0, OpKind::kPut, "a", "1");
      h.stage_write(a);
      h.respond(a);
      h.set_group(a, 1);
      const auto b = h.invoke(1, OpKind::kPut, "b", "2");
      h.stage_write(b);
      h.respond(b);
      h.set_group(b, 1);
      State recovered;
      if (keep_a) recovered["a"] = "1";
      if (keep_b) recovered["b"] = "2";
      const bool want_ok = keep_a == keep_b;
      EXPECT_EQ(check_history(h.ops(), &recovered, true).ok, want_ok)
          << "keep_a=" << keep_a << " keep_b=" << keep_b;
    }
  }
}

// -------------------------------------------------------- interleaver ----

TEST(Interleaver, SameSeedSameSchedule) {
  auto target = make_pmemlib_target();
  std::vector<std::uint64_t> sigs;
  std::vector<std::vector<unsigned>> traces;
  for (int rep = 0; rep < 2; ++rep) {
    target->reset();
    PctPolicy policy(42, 3, 3, 256);
    Interleaver il;
    const auto rr = il.run(target->specs(), policy,
                           {.platform = &target->platform()});
    ASSERT_TRUE(rr.error.empty()) << rr.error;
    sigs.push_back(rr.signature);
    traces.push_back(rr.trace);
  }
  EXPECT_EQ(sigs[0], sigs[1]);
  EXPECT_EQ(traces[0], traces[1]);
}

TEST(Interleaver, ReplayReproducesSignature) {
  auto target = make_lsmkv_target();
  target->reset();
  PctPolicy policy(9, 3, 3, 256);
  Interleaver il;
  const auto rr = il.run(target->specs(), policy,
                         {.platform = &target->platform()});
  ASSERT_TRUE(rr.error.empty()) << rr.error;

  target->reset();
  ReplayPolicy replay(rr.trace);
  Interleaver il2;
  const auto rr2 = il2.run(target->specs(), replay,
                           {.platform = &target->platform()});
  EXPECT_EQ(rr.signature, rr2.signature);
  EXPECT_EQ(rr.trace, rr2.trace);
}

TEST(Interleaver, DifferentSeedsReachDifferentSchedules) {
  auto target = make_cmap_target();
  std::set<std::uint64_t> sigs;
  for (std::uint64_t seed = 0; seed < 8; ++seed) {
    target->reset();
    PctPolicy policy(seed, 3, 3, 256);
    Interleaver il;
    sigs.insert(il.run(target->specs(), policy,
                       {.platform = &target->platform()})
                    .signature);
  }
  EXPECT_GT(sigs.size(), 4u);
}

// Schedule-point telemetry: hooked runs announce yield points to the
// session, which buckets them per kind and emits a schedmc section.
TEST(Interleaver, TelemetryCountsSchedPoints) {
  auto target = make_pmemlib_target();
  target->reset();
  telemetry::Session session(target->platform());
  PctPolicy policy(3, 3, 3, 256);
  Interleaver il;
  const auto rr = il.run(
      target->specs(), policy,
      {.platform = &target->platform(), .sink = &session});
  ASSERT_TRUE(rr.error.empty()) << rr.error;
  EXPECT_GT(session.sched_point_count(sim::SchedPoint::kFence), 0u);
  EXPECT_GT(session.sched_point_count(sim::SchedPoint::kLockAcquire), 0u);
  const std::string json = session.summary_json();
  EXPECT_NE(json.find("\"schedmc\""), std::string::npos);
  EXPECT_NE(json.find("\"fence\""), std::string::npos);
}

// ------------------------------------------------- per-family explore ----

Options live_options() {
  Options o;
  o.seed = 1;
  o.pct_schedules = 220;
  o.dfs_schedules = 40;
  o.crash_schedules = 0;
  o.keep_going = false;
  return o;
}

void expect_family_clean(Target& target, const char* what) {
  const Result r = explore(target, live_options());
  EXPECT_TRUE(r.ok()) << what << ": " << summarize(r);
  // ISSUE acceptance: >= 200 distinct schedules per store family.
  EXPECT_GE(r.distinct_schedules, 200u) << what << ": " << summarize(r);
  EXPECT_GT(r.histories_checked, 0u);
}

TEST(ScheduleExplore, PmemlibLinearizable) {
  expect_family_clean(*make_pmemlib_target(), "pmemlib");
}

TEST(ScheduleExplore, LsmkvLinearizable) {
  expect_family_clean(*make_lsmkv_target(), "lsmkv");
}

TEST(ScheduleExplore, NovafsLinearizable) {
  expect_family_clean(*make_novafs_target(), "novafs");
}

TEST(ScheduleExplore, CmapLinearizable) {
  expect_family_clean(*make_cmap_target(), "cmap");
}

TEST(ScheduleExplore, StreeLinearizable) {
  expect_family_clean(*make_stree_target(), "stree");
}

// The sharded frontend: per-shard locks, cross-shard batched dispatch,
// and a live background-compaction donor thread, all interleaved.
TEST(ScheduleExplore, ShardedLinearizable) {
  expect_family_clean(*make_sharded_target(), "sharded-lsmkv");
}

// Exploration is deterministic end to end: identical options give
// identical schedule sets and identical checker work.
TEST(ScheduleExplore, DeterministicAcrossRuns) {
  auto t1 = make_pmemlib_target();
  auto t2 = make_pmemlib_target();
  Options o = live_options();
  o.pct_schedules = 40;
  o.dfs_schedules = 16;
  const Result r1 = explore(*t1, o);
  const Result r2 = explore(*t2, o);
  EXPECT_EQ(r1.schedules_run, r2.schedules_run);
  EXPECT_EQ(r1.distinct_schedules, r2.distinct_schedules);
  EXPECT_EQ(r1.checker_states, r2.checker_states);
  EXPECT_EQ(r1.histories_checked, r2.histories_checked);
  EXPECT_EQ(r1.violations.size(), r2.violations.size());
}

// ---------------------------------------------------- crash × schedule ----

Options crash_options() {
  Options o;
  o.seed = 11;
  o.pct_schedules = 4;
  o.dfs_schedules = 0;
  o.crash_schedules = 3;
  o.crash_points_per_schedule = 12;
  o.crash_max_exhaustive = 8;
  return o;
}

void expect_crash_clean(Target& target, const char* what) {
  const Result r = explore(target, crash_options());
  EXPECT_TRUE(r.ok()) << what << ": " << summarize(r);
  EXPECT_GT(r.crash_runs, 0u) << what;
  EXPECT_GT(r.recoveries_checked, 0u) << what;
}

TEST(CrashCompose, PmemlibRecoversToLinearizablePrefix) {
  expect_crash_clean(*make_pmemlib_target(), "pmemlib");
}

TEST(CrashCompose, LsmkvRecoversToLinearizablePrefix) {
  expect_crash_clean(*make_lsmkv_target(), "lsmkv");
}

TEST(CrashCompose, NovafsRecoversToLinearizablePrefix) {
  expect_crash_clean(*make_novafs_target(), "novafs");
}

TEST(CrashCompose, CmapRecoversToLinearizablePrefix) {
  expect_crash_clean(*make_cmap_target(), "cmap");
}

TEST(CrashCompose, StreeRecoversToLinearizablePrefix) {
  expect_crash_clean(*make_stree_target(), "stree");
}

// Crash x interleaving through the sharded frontend: a crash inside a
// cross-shard dispatch or a background merge must still recover to a
// linearizable prefix — with each shard's batch slice all-or-nothing.
TEST(CrashCompose, ShardedRecoversToLinearizablePrefix) {
  expect_crash_clean(*make_sharded_target(), "sharded-lsmkv");
}

// ------------------------------------------------- seeded regression ----

// The oracle must catch the deliberately broken lock elision: with the
// RMW critical section split, two racing increments can both read the
// same old value, and no sequential order explains the history.
TEST(SeededRegression, PmemlibElidedRmwLockCaught) {
  TargetOptions to;
  to.fault = TestFault::kElideRmwLock;
  to.ops_per_thread = 6;
  auto target = make_pmemlib_target(to);
  Options o = live_options();
  const Result r = explore(*target, o);
  ASSERT_FALSE(r.ok()) << "elided RMW lock not caught: " << summarize(r);
  EXPECT_EQ(r.violations.front().kind, "linearizability") << summarize(r);
}

TEST(SeededRegression, LsmkvElidedRmwLockCaught) {
  TargetOptions to;
  to.fault = TestFault::kElideRmwLock;
  to.ops_per_thread = 6;
  auto target = make_lsmkv_target(to);
  Options o = live_options();
  const Result r = explore(*target, o);
  ASSERT_FALSE(r.ok()) << "elided RMW lock not caught: " << summarize(r);
  EXPECT_EQ(r.violations.front().kind, "linearizability") << summarize(r);
}

// The same lost-update race through the sharded frontend: dropping the
// owning shard's lock between the counter read and write must surface
// as a linearizability violation, proving the oracle sees through the
// router + per-shard locking.
TEST(SeededRegression, ShardedElidedRmwLockCaught) {
  TargetOptions to;
  to.fault = TestFault::kElideRmwLock;
  to.ops_per_thread = 6;
  auto target = make_sharded_target(to);
  Options o = live_options();
  const Result r = explore(*target, o);
  ASSERT_FALSE(r.ok()) << "elided RMW lock not caught: " << summarize(r);
  EXPECT_EQ(r.violations.front().kind, "linearizability") << summarize(r);
}

}  // namespace
}  // namespace xp::schedmc
