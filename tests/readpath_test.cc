// The shared read-combining layer (pmem::LineReader + pmem::ReadCache)
// and its store deployments: lsmkv SSTable residency + combined probes,
// novafs combined log replay and page reads, pmemkv cmap chain walks and
// stree leaf staging. Includes the Effective Read Ratio (ERR = media read
// bytes / iMC read bytes) regression gates: the combined paths must read
// strictly fewer media bytes than the dribbling seed paths (§5.1), while
// knobs-off runs stay bit-and-timing-identical and every per-DIMM byte
// conservation law keeps holding with the cache in play.
#include <gtest/gtest.h>

#include <cmath>
#include <cstring>
#include <limits>
#include <string>
#include <tuple>
#include <vector>

#include "lsmkv/db.h"
#include "novafs/novafs.h"
#include "pmemkv/cmap.h"
#include "pmemkv/stree.h"
#include "pmemlib/linereader.h"
#include "pmemlib/pool.h"
#include "sim/scheduler.h"
#include "telemetry/registry.h"
#include "telemetry/session.h"
#include "xpsim/fault.h"
#include "xpsim/platform.h"

namespace xp {
namespace {

using hw::Platform;
using hw::PmemNamespace;
using sim::ThreadCtx;

constexpr std::uint64_t kLine = hw::Platform::kXpLineBytes;

ThreadCtx make_thread(unsigned id = 0) {
  return ThreadCtx({.id = id, .socket = 0, .mlp = 8, .seed = id + 1});
}

void drain_xp_buffers(Platform& p, sim::Time t) {
  for (unsigned s = 0; s < p.timing().sockets; ++s)
    for (unsigned c = 0; c < p.timing().channels_per_socket; ++c) {
      auto& d = p.xp_dimm(s, c);
      d.buffer().flush_all(t, d.counters());
    }
}

// Fill [off, off+len) with deterministic bytes via the management path.
void poke_pattern(PmemNamespace& ns, std::uint64_t off, std::size_t len,
                  std::uint8_t salt) {
  std::vector<std::uint8_t> data(len);
  for (std::size_t i = 0; i < len; ++i)
    data[i] = static_cast<std::uint8_t>((off + i) * 131 + salt);
  ns.poke(off, data);
}

// ------------------------------------------------------------ LineReader --

TEST(LineReader, FetchSlicesAndStagedServesAreFree) {
  Platform platform;
  auto& ns = platform.optane(1 << 20);
  ThreadCtx t = make_thread();
  poke_pattern(ns, 0, 8192, 7);

  pmem::LineReader r;
  const auto before = telemetry::Snapshot::capture(platform).xp_total();
  const std::uint8_t* p = r.fetch(t, ns, 300, 40);
  for (int i = 0; i < 40; ++i)
    EXPECT_EQ(p[i], static_cast<std::uint8_t>((300 + i) * 131 + 7));
  t.drain();
  const auto after = telemetry::Snapshot::capture(platform).xp_total();
  // [300, 340) covers exactly one 256 B line: [256, 512).
  EXPECT_EQ(after.imc_read_bytes - before.imc_read_bytes, kLine);
  EXPECT_EQ(r.stats().combined_fetches, 1u);
  EXPECT_EQ(r.stats().pm_bytes, kLine);

  // A second fetch inside the staged span is pure DRAM: no iMC traffic,
  // no simulated time.
  const sim::Time t0 = t.now();
  const std::uint8_t* q = r.fetch(t, ns, 320, 16);
  EXPECT_EQ(q, p + 20);
  EXPECT_EQ(t.now(), t0);
  EXPECT_EQ(r.stats().staged_serves, 1u);
  t.drain();
  const auto again = telemetry::Snapshot::capture(platform).xp_total();
  EXPECT_EQ(again.imc_read_bytes, after.imc_read_bytes);

  r.discard();
  r.fetch(t, ns, 320, 16);  // refetches after discard
  EXPECT_EQ(r.stats().combined_fetches, 2u);
}

TEST(LineReader, WindowStagesAScanUpFront) {
  Platform platform;
  auto& ns = platform.optane(1 << 20);
  ThreadCtx t = make_thread();
  poke_pattern(ns, 4096, 4096, 3);

  pmem::LineReader r;
  // An 8-byte fetch with a page window stages the whole page in one call;
  // the subsequent entry-by-entry walk never touches the device again.
  r.fetch(t, ns, 4096, 8, 4096);
  EXPECT_EQ(r.stats().combined_fetches, 1u);
  EXPECT_EQ(r.stats().pm_bytes, 4096u);
  for (std::uint64_t off = 4096; off < 8192; off += 32) {
    const auto v = r.fetch_pod<std::uint32_t>(t, ns, off);
    std::uint32_t want = 0;
    std::uint8_t b[4];
    for (int i = 0; i < 4; ++i)
      b[i] = static_cast<std::uint8_t>((off + i) * 131 + 3);
    std::memcpy(&want, b, 4);
    EXPECT_EQ(v, want);
  }
  EXPECT_EQ(r.stats().combined_fetches, 1u);
  EXPECT_EQ(r.stats().staged_serves, 128u);
}

TEST(LineReader, CoalescesMultiLineSpanIntoOneLoad) {
  Platform platform;
  auto& ns = platform.optane(1 << 20);
  ThreadCtx t = make_thread();
  poke_pattern(ns, 0, 4096, 1);

  // Dribble: 16 dependent 8-byte loads at 64 B stride across 1 KB.
  // (Disjoint regions for the two phases so neither is served by CPU
  // cachelines the other warmed.)
  ThreadCtx t_dribble = make_thread(1);
  const auto s0 = telemetry::Snapshot::capture(platform).xp_total();
  for (int i = 0; i < 16; ++i)
    ns.load_pod<std::uint64_t>(t_dribble, 512 + i * 64);
  t_dribble.drain();
  const auto s1 = telemetry::Snapshot::capture(platform).xp_total();
  const sim::Time dribble_time = t_dribble.now();

  platform.reset_timing();  // fresh device queues for the second thread
  ThreadCtx t_comb = make_thread(2);
  pmem::LineReader r;
  const auto c0 = telemetry::Snapshot::capture(platform).xp_total();
  r.fetch(t_comb, ns, 2048, 1024);
  t_comb.drain();
  const auto c1 = telemetry::Snapshot::capture(platform).xp_total();

  // Same span size and iMC bytes, one load call instead of 16, and no
  // slower (the MLP window pipelines the dribble too, so the win here is
  // the collapsed call count; the latency win shows up on cache hits).
  EXPECT_EQ(c1.imc_read_bytes - c0.imc_read_bytes,
            s1.imc_read_bytes - s0.imc_read_bytes);
  EXPECT_LE(t_comb.now(), dribble_time);
  EXPECT_EQ(r.stats().combined_fetches, 1u);
}

TEST(LineReader, PoisonedLineStillFaultsAndStagingInvalidates) {
  Platform platform;
  auto& ns = platform.optane(1 << 20);
  ThreadCtx t = make_thread();
  poke_pattern(ns, 0, 4096, 9);
  hw::FaultInjector injector(platform, /*seed=*/11);
  injector.poison(ns, 512);

  pmem::LineReader r;
  EXPECT_THROW(r.fetch(t, ns, 300, 400), hw::MediaError);  // spans [256,768)
  platform.clear_media_fault();
  // The failed fetch must not leave a half-staged span behind.
  const std::uint8_t* p = r.fetch(t, ns, 0, 64);
  EXPECT_EQ(p[0], static_cast<std::uint8_t>(0 * 131 + 9));
  // A fetch that stays on clean lines is unaffected by nearby poison.
  r.fetch(t, ns, 1024, 64);
}

// ------------------------------------------------------------- ReadCache --

TEST(ReadCache, HitsServeFromDramWithNoDeviceTraffic) {
  Platform platform;
  auto& ns = platform.optane(1 << 20);
  ThreadCtx t = make_thread();
  poke_pattern(ns, 0, 4096, 5);

  pmem::ReadCache cache(ns, {.capacity_lines = 64});
  pmem::LineReader r;
  r.attach_cache(&cache);

  r.fetch(t, ns, 0, 512);  // miss: loads + fills two lines
  EXPECT_EQ(cache.stats().insertions, 2u);
  r.discard();

  t.drain();
  const auto before = telemetry::Snapshot::capture(platform).xp_total();
  const sim::Time t0 = t.now();
  const std::uint8_t* p = r.fetch(t, ns, 0, 512);  // all cached
  for (int i = 0; i < 512; ++i)
    ASSERT_EQ(p[i], static_cast<std::uint8_t>(i * 131 + 5));
  t.drain();
  const auto after = telemetry::Snapshot::capture(platform).xp_total();
  EXPECT_EQ(cache.stats().hits, 2u);
  EXPECT_EQ(after.imc_read_bytes, before.imc_read_bytes);
  EXPECT_EQ(after.media_read_bytes, before.media_read_bytes);
  EXPECT_GT(t.now(), t0);  // hits still cost DRAM latency
}

TEST(ReadCache, EveryWritePathInvalidates) {
  Platform platform;
  auto& ns = platform.optane(1 << 20);
  ThreadCtx t = make_thread();
  poke_pattern(ns, 0, 4096, 2);

  pmem::ReadCache cache(ns, {.capacity_lines = 64});
  pmem::LineReader r;
  r.attach_cache(&cache);

  auto reload = [&](std::uint64_t off) {
    r.discard();
    const std::uint8_t* p = r.fetch(t, ns, off, 8);
    std::uint64_t v = 0;
    std::memcpy(&v, p, 8);
    return v;
  };

  // store: cached line dropped, next fetch sees the new bytes.
  reload(0);
  const std::uint64_t v1 = 0x1111111111111111ull;
  ns.store_persist(t, 0, std::span<const std::uint8_t>(
                             reinterpret_cast<const std::uint8_t*>(&v1), 8));
  EXPECT_EQ(reload(0), v1);

  // ntstore.
  const std::uint64_t v2 = 0x2222222222222222ull;
  ns.ntstore_persist(t, 0, std::span<const std::uint8_t>(
                               reinterpret_cast<const std::uint8_t*>(&v2), 8));
  EXPECT_EQ(reload(0), v2);

  // poke (management backdoor): the observer still fires and drops the
  // cached line. What the refetch then sees is whatever a plain timed
  // load sees (the CPU cache is not poke-coherent) — the cache contract
  // is load-equivalence, so assert exactly that.
  const std::uint64_t inval_before = cache.stats().invalidations;
  const std::uint64_t v3 = 0x3333333333333333ull;
  ns.poke(0, std::span<const std::uint8_t>(
                 reinterpret_cast<const std::uint8_t*>(&v3), 8));
  EXPECT_GT(cache.stats().invalidations, inval_before);
  EXPECT_EQ(reload(0), ns.load_pod<std::uint64_t>(t, 0));
  EXPECT_GE(cache.stats().invalidations, 3u);
}

TEST(ReadCache, ClockEvictionBoundsCapacity) {
  Platform platform;
  auto& ns = platform.optane(1 << 20);
  ThreadCtx t = make_thread();
  poke_pattern(ns, 0, 64 * kLine, 4);

  // One shard, four slots: the fifth distinct line must evict.
  pmem::ReadCache cache(ns, {.capacity_lines = 4, .shards = 1});
  pmem::LineReader r;
  r.attach_cache(&cache);
  for (int i = 0; i < 8; ++i) {
    r.discard();
    r.fetch(t, ns, i * kLine, 8);
  }
  EXPECT_EQ(cache.stats().insertions, 8u);
  EXPECT_GE(cache.stats().evictions, 4u);
  // Still correct after churn.
  r.discard();
  const std::uint8_t* p = r.fetch(t, ns, 3 * kLine, 8);
  EXPECT_EQ(p[0], static_cast<std::uint8_t>((3 * kLine) * 131 + 4));
}

// ------------------------------------------------------------ ERR metric --

TEST(ErrMetric, CounterConventionsMirrorEwr) {
  hw::XpCounters c;
  EXPECT_DOUBLE_EQ(c.err(), 1.0);  // no read traffic at all
  c.media_read_bytes = 256;
  EXPECT_TRUE(std::isinf(c.err()));  // media reads with no iMC reads
  c.imc_read_bytes = 64;
  EXPECT_DOUBLE_EQ(c.err(), 4.0);
  c.imc_read_bytes = 256;
  EXPECT_DOUBLE_EQ(c.err(), 1.0);
}

TEST(ErrMetric, SummaryJsonCarriesErrAndReadPathSection) {
  Platform platform;
  auto& ns = platform.optane(1 << 20);
  ThreadCtx t = make_thread();
  poke_pattern(ns, 0, 4096, 6);
  {
    telemetry::Session session(platform, {});
    ns.load_pod<std::uint64_t>(t, 0);
    t.drain();
    session.finish();
    const std::string j = session.summary_json();
    EXPECT_NE(j.find("\"err\""), std::string::npos);
    // No LineReader/ReadCache was used: the summary must not grow the
    // read_path section (shape-stable for default runs).
    EXPECT_EQ(j.find("\"read_path\""), std::string::npos);
  }
  {
    telemetry::Session session(platform, {});
    pmem::LineReader r;
    r.fetch(t, ns, 0, 64);
    t.drain();
    session.finish();
    const std::string j = session.summary_json();
    EXPECT_NE(j.find("\"read_path\""), std::string::npos);
    EXPECT_NE(j.find("\"combined_fetches\":1"), std::string::npos);
    EXPECT_EQ(session.read_path_count(hw::ReadPathEventKind::kCombinedFetch),
              1u);
    EXPECT_EQ(session.read_path_bytes(hw::ReadPathEventKind::kCombinedFetch),
              kLine);
  }
}

// -------------------------------------------------------------- lsmkv ----

kv::DbOptions lsm_opts(bool on) {
  kv::DbOptions o;
  o.memtable_bytes = 16 << 10;  // small: force flushes + compactions
  if (on) {
    o.sst_residency = true;
    o.read_combine = true;
    o.read_cache_lines = 4096;
  }
  return o;
}

// Deterministic mixed workload; returns every get/scan observation.
std::vector<std::string> run_lsm_workload(Platform& platform,
                                          const kv::DbOptions& opts) {
  auto& ns = platform.optane(256 << 20);
  ThreadCtx t = make_thread();
  kv::Db db(ns, opts);
  db.create(t);
  sim::Rng rng(1234);
  auto key_of = [](std::uint64_t i) {
    char buf[24];
    std::snprintf(buf, sizeof buf, "key%06llu",
                  static_cast<unsigned long long>(i));
    return std::string(buf);
  };
  for (int i = 0; i < 900; ++i)
    db.put(t, key_of(i), std::string(100, static_cast<char>('a' + i % 23)));
  for (int i = 0; i < 900; i += 7) db.del(t, key_of(i));

  std::vector<std::string> obs;
  std::string v;
  for (int i = 0; i < 1100; ++i) {
    const std::uint64_t k = rng.uniform(1000);
    if (db.get(t, key_of(k), &v))
      obs.push_back(key_of(k) + "=" + v);
    else
      obs.push_back(key_of(k) + "=<miss>");
  }
  for (const auto& [k2, v2] : db.scan(t, key_of(100), 50))
    obs.push_back("scan:" + k2 + "=" + v2);

  // Reopen: the on-path loads residency from PM (open-time bulk loads)
  // and must serve the same data afterwards.
  kv::Db db2(ns, opts);
  EXPECT_TRUE(db2.open(t));
  for (int i = 0; i < 200; ++i) {
    const std::uint64_t k = rng.uniform(1000);
    if (db2.get(t, key_of(k), &v))
      obs.push_back("re:" + key_of(k) + "=" + v);
    else
      obs.push_back("re:" + key_of(k) + "=<miss>");
  }
  return obs;
}

TEST(LsmkvReadPath, OnOffResultsIdentical) {
  Platform p_off, p_on;
  const auto off = run_lsm_workload(p_off, lsm_opts(false));
  const auto on = run_lsm_workload(p_on, lsm_opts(true));
  ASSERT_EQ(off.size(), on.size());
  EXPECT_EQ(off, on);
}

TEST(LsmkvReadPath, AcceleratedGetsReadFewerMediaBytesAndLowerErr) {
  auto measure = [](bool on) {
    // Shrink the LLC below the working set: with the default 32 MB cache
    // every repeat read is a CPU-cache hit and no configuration could
    // show media traffic. Small-LLC is the regime the §5.1 read
    // guidelines target (working set > LLC, < DRAM cache).
    hw::Timing tm;
    tm.llc_lines = 512;  // 32 KB
    Platform platform(tm, /*seed=*/1);
    auto& ns = platform.optane(256 << 20);
    ThreadCtx t = make_thread();
    kv::Db db(ns, lsm_opts(on));
    db.create(t);
    auto key_of = [](int i) {
      char buf[24];
      std::snprintf(buf, sizeof buf, "key%06d", i);
      return std::string(buf);
    };
    // ~230 KB of SSTable data: bigger than both the shrunken LLC and the
    // aggregate XPBuffer capacity, so uncombined gets pay media reads on
    // every round.
    for (int i = 0; i < 2000; ++i)
      db.put(t, key_of(i), std::string(100, 'v'));
    db.flush(t);

    platform.reset_timing();
    t.drain();
    drain_xp_buffers(platform, t.now());
    const auto s0 = telemetry::Snapshot::capture(platform).xp_total();
    const sim::Time g0 = t.now();
    std::string v;
    std::uint64_t hits = 0;
    for (int round = 0; round < 3; ++round)
      for (int i = 0; i < 2000; i += 2)
        hits += db.get(t, key_of(i), &v) ? 1 : 0;
    t.drain();
    drain_xp_buffers(platform, t.now());
    const auto d = telemetry::Snapshot::capture(platform).xp_total() - s0;
    EXPECT_EQ(hits, 3000u);
    struct Out {
      std::uint64_t media_read, imc_read;
      double err;
      sim::Time elapsed;
    };
    return Out{d.media_read_bytes, d.imc_read_bytes, d.err(), t.now() - g0};
  };

  const auto off = measure(false);
  const auto on = measure(true);
  EXPECT_LT(on.media_read, off.media_read);
  EXPECT_LT(on.imc_read, off.imc_read);
  // ERR normalized to user-requested bytes (the issue's definition):
  // 900 hits x 100 B of value actually asked for. The hardware-ratio
  // err() (media/iMC) is floored near 1.0 for line-aligned combined
  // fetches and is asserted per-DIMM elsewhere; what must fall here is
  // media traffic per byte the application wanted.
  const double user_bytes = 3000.0 * 100.0;
  EXPECT_LT(static_cast<double>(on.media_read) / user_bytes,
            static_cast<double>(off.media_read) / user_bytes);
  // The headline §5.1 gate: accelerated point gets are at least 2x faster.
  EXPECT_LT(on.elapsed * 2, off.elapsed)
      << "expected >= 2x point-get speedup with the read path on";
}

TEST(LsmkvReadPath, KnobsOffTelemetryDeterministic) {
  auto run = [] {
    Platform platform;
    auto& ns = platform.optane(256 << 20);
    ThreadCtx t = make_thread();
    kv::Db db(ns, lsm_opts(false));
    db.create(t);
    std::string v;
    for (int i = 0; i < 300; ++i)
      db.put(t, "k" + std::to_string(i), std::string(60, 'v'));
    db.flush(t);
    for (int i = 0; i < 300; ++i) db.get(t, "k" + std::to_string(i), &v);
    t.drain();
    drain_xp_buffers(platform, t.now());
    const auto total = telemetry::Snapshot::capture(platform).xp_total();
    return std::make_tuple(total.imc_write_bytes, total.media_write_bytes,
                           total.imc_read_bytes, total.media_read_bytes,
                           t.now());
  };
  EXPECT_EQ(run(), run());
}

// -------------------------------------------------------------- novafs ---

nova::NovaOptions nova_opts(bool on) {
  nova::NovaOptions o;
  o.datalog = true;  // overlays exercise the embedded-extent read path
  if (on) {
    o.read_combine = true;
    o.read_cache_lines = 4096;
  }
  return o;
}

std::vector<std::uint8_t> run_nova_workload(Platform& platform,
                                            const nova::NovaOptions& opts) {
  auto& ns = platform.optane(128 << 20);
  ThreadCtx t = make_thread();
  nova::NovaFs fs(ns, opts);
  fs.format(t);
  sim::Rng rng(777);
  const int f1 = fs.create(t, "a.dat");
  const int f2 = fs.create(t, "b.dat");
  std::vector<std::uint8_t> buf;
  for (int i = 0; i < 120; ++i) {
    const std::size_t len = 1 + rng.uniform(300);
    const std::uint64_t off = rng.uniform(48 << 10);
    buf.assign(len, static_cast<std::uint8_t>(rng.next()));
    fs.write(t, rng.uniform(2) != 0u ? f1 : f2, off, buf);
  }
  // Remount: log replay (combined when on) rebuilds everything.
  nova::NovaFs fs2(ns, opts);
  EXPECT_TRUE(fs2.mount(t));
  std::vector<std::uint8_t> all;
  std::vector<std::uint8_t> out(64 << 10);
  for (const char* name : {"a.dat", "b.dat"}) {
    const int fd = fs2.open(t, name);
    EXPECT_GE(fd, 0);
    const std::size_t n = fs2.read(t, fd, 0, out);
    all.insert(all.end(), out.begin(), out.begin() + n);
  }
  return all;
}

TEST(NovafsReadPath, OnOffContentsIdentical) {
  Platform p_off, p_on;
  const auto off = run_nova_workload(p_off, nova_opts(false));
  const auto on = run_nova_workload(p_on, nova_opts(true));
  ASSERT_EQ(off.size(), on.size());
  EXPECT_EQ(off, on);
}

TEST(NovafsReadPath, CombinedReplayAndReadsLowerMediaReads) {
  auto measure = [](bool on) {
    hw::Timing tm;
    tm.llc_lines = 512;  // 32 KB LLC < log + data working set
    Platform platform(tm, /*seed=*/1);
    auto& ns = platform.optane(128 << 20);
    ThreadCtx t = make_thread();
    nova::NovaFs fs(ns, nova_opts(false));  // write phase identical
    fs.format(t);
    const int fd = fs.create(t, "f");
    std::vector<std::uint8_t> buf(200, 0xab);
    for (int i = 0; i < 400; ++i) fs.write(t, fd, (i * 613) % (32 << 10), buf);

    nova::NovaFs fs2(ns, nova_opts(on));
    platform.reset_timing();
    t.drain();
    drain_xp_buffers(platform, t.now());
    const auto s0 = telemetry::Snapshot::capture(platform).xp_total();
    EXPECT_TRUE(fs2.mount(t));
    const int fd2 = fs2.open(t, "f");
    std::vector<std::uint8_t> out(32 << 10);
    for (int round = 0; round < 3; ++round) fs2.read(t, fd2, 0, out);
    t.drain();
    drain_xp_buffers(platform, t.now());
    const auto d = telemetry::Snapshot::capture(platform).xp_total() - s0;
    return std::make_pair(d.media_read_bytes, d.err());
  };
  const auto off = measure(false);
  const auto on = measure(true);
  // Absolute media-read traffic falls. (The media/iMC ratio does not:
  // the seed's sequential replay already rides the XPBuffer below 1.0,
  // while combined fetches sit at exactly 1.0 — fewer bytes on both
  // sides of the ratio.)
  EXPECT_LT(on.first, off.first);
  EXPECT_LE(on.second, 1.05);
}

// -------------------------------------------------------------- pmemkv ---

TEST(CmapReadPath, OnOffResultsIdentical) {
  auto run = [](bool on) {
    Platform platform;
    auto& ns = platform.optane(256 << 20);
    ThreadCtx t = make_thread();
    pmem::Pool pool(ns);
    pool.create(t, 64);
    pmemkv::CMapOptions o;
    o.read_combine = on;
    o.read_cache_lines = on ? 2048 : 0;
    pmemkv::CMap map(pool, o);
    map.create(t);
    sim::Rng rng(42);
    std::vector<std::string> obs;
    std::string v;
    for (int i = 0; i < 500; ++i)
      map.put(t, "key" + std::to_string(i),
              std::string(20 + i % 60, static_cast<char>('a' + i % 20)));
    for (int i = 0; i < 500; i += 3) map.remove(t, "key" + std::to_string(i));
    for (int i = 0; i < 800; ++i) {
      const auto k = "key" + std::to_string(rng.uniform(600));
      obs.push_back(map.get(t, k, &v) ? k + "=" + v : k + "=<miss>");
    }
    return obs;
  };
  EXPECT_EQ(run(false), run(true));
}

TEST(StreeReadPath, OnOffResultsIdentical) {
  auto run = [](bool on) {
    Platform platform;
    auto& ns = platform.optane(256 << 20);
    ThreadCtx t = make_thread();
    pmem::Pool pool(ns);
    pool.create(t, 64);
    pmemkv::STreeOptions o;
    o.read_combine = on;
    o.read_cache_lines = on ? 2048 : 0;
    pmemkv::STree tree(pool, o);
    tree.create(t);
    sim::Rng rng(43);
    std::vector<std::string> obs;
    std::string v;
    for (int i = 0; i < 400; ++i)
      tree.put(t, "key" + std::to_string(i),
               std::string(10 + i % 80, static_cast<char>('A' + i % 26)));
    for (int i = 0; i < 400; i += 5) tree.remove(t, "key" + std::to_string(i));
    for (int i = 0; i < 700; ++i) {
      const auto k = "key" + std::to_string(rng.uniform(500));
      obs.push_back(tree.get(t, k, &v) ? k + "=" + v : k + "=<miss>");
    }
    for (const auto& [k, val] : tree.scan(t, "key2", 40))
      obs.push_back("scan:" + k + "=" + val);
    // Reopen rebuilds the DRAM index (combined when on).
    pmemkv::STree tree2(pool, o);
    tree2.open(t);
    for (int i = 0; i < 100; ++i) {
      const auto k = "key" + std::to_string(rng.uniform(500));
      obs.push_back(tree2.get(t, k, &v) ? "re:" + k + "=" + v
                                        : "re:" + k + "=<miss>");
    }
    return obs;
  };
  EXPECT_EQ(run(false), run(true));
}

// The tentpole conservation claim: with the DRAM cache on, repeated hot
// gets read STRICTLY fewer media bytes than the same gets without the
// cache — and every per-DIMM byte-conservation law still holds, so the
// savings are real, not an accounting artifact.
TEST(CmapReadPath, CachedRunReadsStrictlyFewerMediaBytesPerDimm) {
  auto measure = [](std::size_t cache_lines) {
    hw::Timing cfg;
    cfg.llc_lines = 256;  // 16 KB LLC < table lines + chain nodes touched
    Platform platform(cfg, /*seed=*/1);
    auto& ns = platform.optane(256 << 20);
    ThreadCtx t = make_thread();
    pmem::Pool pool(ns);
    pool.create(t, 64);
    pmemkv::CMapOptions o;
    o.read_combine = true;
    o.read_cache_lines = cache_lines;
    pmemkv::CMap map(pool, o);
    map.create(t);
    // 1500 keys touch ~475 KB of bucket-table + chain lines: far beyond
    // the aggregate XPBuffer capacity (6 DIMMs x 16 KB), so uncached
    // repeat rounds must go back to the media.
    for (int i = 0; i < 1500; ++i)
      map.put(t, "key" + std::to_string(i), std::string(40, 'v'));

    platform.reset_timing();
    t.drain();
    drain_xp_buffers(platform, t.now());
    const auto s0 = telemetry::Snapshot::capture(platform);
    std::string v;
    for (int round = 0; round < 4; ++round)
      for (int i = 0; i < 1500; ++i)
        EXPECT_TRUE(map.get(t, "key" + std::to_string(i), &v));
    t.drain();
    drain_xp_buffers(platform, t.now());
    const auto snap = telemetry::Snapshot::capture(platform);
    const auto delta = snap - s0;

    // Per-DIMM conservation (read laws) with the cache in play.
    const hw::Timing& tm = platform.timing();
    for (unsigned s = 0; s < snap.sockets(); ++s)
      for (unsigned c = 0; c < snap.channels(); ++c) {
        const hw::XpCounters& d = snap.xp[s][c].counters;
        EXPECT_EQ(d.media_read_bytes,
                  tm.xpline * (d.buffer_miss_reads + d.evictions_partial +
                               d.wear_migrations))
            << "dimm (" << s << "," << c << ")";
        EXPECT_EQ(d.imc_read_bytes,
                  tm.cacheline * (d.buffer_hit_reads + d.buffer_miss_reads))
            << "dimm (" << s << "," << c << ")";
      }
    return delta.xp_total().media_read_bytes;
  };

  const std::uint64_t uncached = measure(0);
  const std::uint64_t cached = measure(8192);
  EXPECT_LT(cached, uncached);
  EXPECT_GT(uncached, 0u);
}

TEST(StreeReadPath, HotLeafCachingCutsMediaReads) {
  auto measure = [](std::size_t cache_lines) {
    hw::Timing tm;
    tm.llc_lines = 256;  // 16 KB LLC < leaves + value blobs
    Platform platform(tm, /*seed=*/1);
    auto& ns = platform.optane(256 << 20);
    ThreadCtx t = make_thread();
    pmem::Pool pool(ns);
    pool.create(t, 64);
    pmemkv::STreeOptions o;
    o.read_combine = true;
    o.read_cache_lines = cache_lines;
    pmemkv::STree tree(pool, o);
    tree.create(t);
    char key[16];
    for (int i = 0; i < 256; ++i) {
      std::snprintf(key, sizeof key, "k%05d", i);
      tree.put(t, key, std::string(30, 'v'));
    }
    platform.reset_timing();
    t.drain();
    drain_xp_buffers(platform, t.now());
    const auto s0 = telemetry::Snapshot::capture(platform).xp_total();
    std::string v;
    for (int round = 0; round < 4; ++round)
      for (int i = 0; i < 256; ++i) {
        std::snprintf(key, sizeof key, "k%05d", i);
        EXPECT_TRUE(tree.get(t, key, &v));
      }
    t.drain();
    drain_xp_buffers(platform, t.now());
    const auto d = telemetry::Snapshot::capture(platform).xp_total() - s0;
    return d.media_read_bytes;
  };
  const auto uncached = measure(0);
  const auto cached = measure(8192);
  EXPECT_LT(cached, uncached);
}

TEST(PmemkvReadPath, KnobsOffTelemetryDeterministic) {
  auto run = [] {
    Platform platform;
    auto& ns = platform.optane(256 << 20);
    ThreadCtx t = make_thread();
    pmem::Pool pool(ns);
    pool.create(t, 64);
    pmemkv::CMap map(pool);
    map.create(t);
    std::string v;
    for (int i = 0; i < 200; ++i)
      map.put(t, "k" + std::to_string(i), std::string(32, 'x'));
    for (int i = 0; i < 400; ++i) map.get(t, "k" + std::to_string(i % 250), &v);
    t.drain();
    drain_xp_buffers(platform, t.now());
    const auto total = telemetry::Snapshot::capture(platform).xp_total();
    return std::make_tuple(total.imc_write_bytes, total.media_write_bytes,
                           total.imc_read_bytes, total.media_read_bytes,
                           t.now());
  };
  EXPECT_EQ(run(), run());
}

}  // namespace
}  // namespace xp
