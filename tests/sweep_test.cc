// Tests for the host-parallel sweep engine: pool mechanics, job-count
// resolution, and the core guarantee that parallel sweeps produce
// bit-identical results to serial ones.
#include "sweep/sweep.h"

#include <gtest/gtest.h>

#include <atomic>
#include <cstdlib>
#include <stdexcept>
#include <vector>

#include "lattester/runner.h"
#include "xpsim/platform.h"

namespace xp {
namespace {

TEST(Pool, CoversEveryIndexExactlyOnce) {
  sweep::Pool pool(4);
  constexpr std::size_t kN = 257;
  std::vector<std::atomic<int>> hits(kN);
  pool.for_each_index(kN, [&](std::size_t i) { ++hits[i]; });
  for (std::size_t i = 0; i < kN; ++i) EXPECT_EQ(hits[i].load(), 1);
}

TEST(Pool, JobsOneRunsOnCallerThread) {
  sweep::Pool pool(1);
  EXPECT_EQ(pool.jobs(), 1u);
  const std::thread::id caller = std::this_thread::get_id();
  pool.for_each_index(16, [&](std::size_t) {
    EXPECT_EQ(std::this_thread::get_id(), caller);
  });
}

TEST(Pool, EmptyBatchIsANoop) {
  sweep::Pool pool(2);
  pool.for_each_index(0, [&](std::size_t) { FAIL(); });
}

TEST(Pool, ReusableAcrossBatches) {
  sweep::Pool pool(3);
  for (int round = 0; round < 5; ++round) {
    std::atomic<std::size_t> sum{0};
    pool.for_each_index(10, [&](std::size_t i) { sum += i; });
    EXPECT_EQ(sum.load(), 45u);
  }
}

// Regression test for a batch-reuse race: a worker still waking up from
// one batch must never claim an index of the next batch (and invoke the
// by-then-destroyed function object). Thousands of tiny back-to-back
// batches maximize the window where a stale worker races the reset.
TEST(Pool, RapidBatchTurnoverIsSafe) {
  sweep::Pool pool(4);
  for (int round = 0; round < 2000; ++round) {
    std::vector<std::atomic<int>> hits(3);
    pool.for_each_index(hits.size(),
                        [&](std::size_t i) { ++hits[i]; });
    for (auto& h : hits) ASSERT_EQ(h.load(), 1);
  }
}

TEST(Pool, RethrowsFirstException) {
  sweep::Pool pool(2);
  std::atomic<int> completed{0};
  EXPECT_THROW(
      pool.for_each_index(8,
                          [&](std::size_t i) {
                            if (i == 3) throw std::runtime_error("boom");
                            ++completed;
                          }),
      std::runtime_error);
  // Remaining points still ran; the batch finishes before rethrowing.
  EXPECT_EQ(completed.load(), 7);
}

TEST(Jobs, FlagParsing) {
  const char* a1[] = {"bench", "--jobs", "7"};
  EXPECT_EQ(sweep::jobs_from_args(3, const_cast<char**>(a1)), 7u);
  const char* a2[] = {"bench", "--jobs=3"};
  EXPECT_EQ(sweep::jobs_from_args(2, const_cast<char**>(a2)), 3u);
  const char* a3[] = {"bench", "-j2"};
  EXPECT_EQ(sweep::jobs_from_args(2, const_cast<char**>(a3)), 2u);
  const char* a4[] = {"bench", "-j", "5"};
  EXPECT_EQ(sweep::jobs_from_args(3, const_cast<char**>(a4)), 5u);
}

TEST(Jobs, EnvFallback) {
  ::setenv("XP_JOBS", "6", 1);
  EXPECT_EQ(sweep::default_jobs(), 6u);
  const char* argv[] = {"bench"};
  EXPECT_EQ(sweep::jobs_from_args(1, const_cast<char**>(argv)), 6u);
  ::setenv("XP_JOBS", "not-a-number", 1);
  EXPECT_GE(sweep::default_jobs(), 1u);
  ::unsetenv("XP_JOBS");
  EXPECT_GE(sweep::default_jobs(), 1u);
}

// The engine's core guarantee: a grid evaluated with jobs=1 and jobs=4
// produces identical lat::Result vectors — each point owns its Platform
// and RNG streams, so host scheduling must not leak into the simulation.
TEST(Sweep, ParallelMatchesSerialBitForBit) {
  struct Cfg {
    lat::Op op;
    unsigned threads;
  };
  sweep::Grid<Cfg> grid;
  for (unsigned threads : {1u, 2u, 4u})
    for (lat::Op op : {lat::Op::kLoad, lat::Op::kNtStore})
      grid.add({op, threads});

  auto point = [](const Cfg& c) {
    hw::Platform platform;
    hw::NamespaceOptions o;
    o.device = hw::Device::kXp;
    o.interleaved = false;
    o.size = 1ull << 30;
    o.discard_data = true;
    auto& ns = platform.add_namespace(o);
    lat::WorkloadSpec spec;
    spec.op = c.op;
    spec.pattern = lat::Pattern::kSeq;
    spec.access_size = 256;
    spec.threads = c.threads;
    spec.region_size = o.size;
    spec.warmup = sim::us(20);
    spec.duration = sim::us(200);
    return lat::run(platform, ns, spec);
  };

  sweep::Pool serial(1);
  sweep::Pool parallel(4);
  const std::vector<lat::Result> a = sweep::run_points(serial, grid, point);
  const std::vector<lat::Result> b =
      sweep::run_points(parallel, grid, point);

  ASSERT_EQ(a.size(), grid.size());
  ASSERT_EQ(b.size(), grid.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    SCOPED_TRACE(i);
    EXPECT_EQ(a[i].ops, b[i].ops);
    EXPECT_EQ(a[i].bytes, b[i].bytes);
    EXPECT_EQ(a[i].window, b[i].window);
    EXPECT_EQ(a[i].bandwidth_gbps, b[i].bandwidth_gbps);
    EXPECT_EQ(a[i].ewr, b[i].ewr);
    EXPECT_EQ(a[i].latency.count(), b[i].latency.count());
    EXPECT_EQ(a[i].latency.mean(), b[i].latency.mean());
    EXPECT_EQ(a[i].latency.percentile(0.5), b[i].latency.percentile(0.5));
    EXPECT_EQ(a[i].latency.percentile(0.99), b[i].latency.percentile(0.99));
    EXPECT_GT(a[i].ops, 0u);  // the points actually measured something
  }
}

// Repeated parallel evaluation of the same grid is stable too (no
// leftover pool state between batches).
TEST(Sweep, RepeatedRunsAreStable) {
  sweep::Grid<unsigned> grid;
  grid.add(1);
  grid.add(2);
  auto point = [](unsigned threads) {
    hw::Platform platform;
    auto& ns = platform.optane_ni(64 << 20);
    lat::WorkloadSpec spec;
    spec.op = lat::Op::kNtStore;
    spec.access_size = 256;
    spec.threads = threads;
    spec.region_size = 32 << 20;
    spec.duration = sim::us(100);
    return lat::run(platform, ns, spec).bandwidth_gbps;
  };
  sweep::Pool pool(4);
  const auto first = sweep::run_points(pool, grid, point);
  for (int i = 0; i < 3; ++i)
    EXPECT_EQ(sweep::run_points(pool, grid, point), first);
}

}  // namespace
}  // namespace xp
