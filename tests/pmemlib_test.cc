// Tests for the mini-PMDK: pool lifecycle, transactional allocator,
// undo-log transactions, crash-point recovery properties, micro-buffering.
#include <gtest/gtest.h>

#include <numeric>
#include <vector>

#include "pmemlib/microbuf.h"
#include "pmemlib/pmem_ops.h"
#include "pmemlib/pool.h"

namespace xp::pmem {
namespace {

using hw::Platform;
using hw::PmemNamespace;
using sim::ThreadCtx;

ThreadCtx make_thread(unsigned id = 0) {
  return ThreadCtx({.id = id, .socket = 0, .mlp = 8, .seed = id + 1});
}

struct PoolFixture : ::testing::Test {
  PoolFixture() : ns(platform.optane(64 << 20)), pool(ns) {}
  Platform platform;
  PmemNamespace& ns;
  Pool pool;
};

TEST_F(PoolFixture, CreateAndOpen) {
  ThreadCtx t = make_thread();
  pool.create(t, 1024);
  EXPECT_NE(pool.root(t), 0u);
  EXPECT_EQ(pool.root_size(t), 1024u);

  Pool reopened(ns);
  EXPECT_TRUE(reopened.open(t));
  EXPECT_EQ(reopened.root(t), pool.root(t));
}

TEST_F(PoolFixture, OpenRejectsUnformatted) {
  ThreadCtx t = make_thread();
  Pool p(ns);
  EXPECT_FALSE(p.open(t));
}

TEST_F(PoolFixture, RootIsZeroed) {
  ThreadCtx t = make_thread();
  pool.create(t, 256);
  std::vector<std::uint8_t> out(256);
  ns.peek(pool.root(t), out);
  EXPECT_EQ(std::accumulate(out.begin(), out.end(), 0), 0);
}

TEST_F(PoolFixture, TxAllocReturnsAlignedDistinct) {
  ThreadCtx t = make_thread();
  pool.create(t, 64);
  Tx tx(pool, t);
  const std::uint64_t a = pool.tx_alloc(tx, 100);
  const std::uint64_t b = pool.tx_alloc(tx, 100);
  tx.commit();
  EXPECT_EQ(a % 64, 0u);
  EXPECT_EQ(b % 64, 0u);
  EXPECT_GE(b, a + 128);  // 100 rounds to 128
}

TEST_F(PoolFixture, FreeListReuse) {
  ThreadCtx t = make_thread();
  pool.create(t, 64);
  std::uint64_t a;
  {
    Tx tx(pool, t);
    a = pool.tx_alloc(tx, 256);
    tx.commit();
  }
  {
    Tx tx(pool, t);
    pool.tx_free(tx, a, 256);
    tx.commit();
  }
  {
    Tx tx(pool, t);
    const std::uint64_t b = pool.tx_alloc(tx, 256);
    tx.commit();
    EXPECT_EQ(b, a);  // exact-fit reuse
  }
}

TEST_F(PoolFixture, FreeChunkSplitting) {
  ThreadCtx t = make_thread();
  pool.create(t, 64);
  std::uint64_t a;
  {
    Tx tx(pool, t);
    a = pool.tx_alloc(tx, 1024);
    pool.tx_free(tx, a, 1024);
    tx.commit();
  }
  Tx tx(pool, t);
  const std::uint64_t b = pool.tx_alloc(tx, 256);
  const std::uint64_t c = pool.tx_alloc(tx, 256);
  tx.commit();
  EXPECT_EQ(b, a);
  EXPECT_EQ(c, a + 256);  // carved from the same chunk
}

TEST_F(PoolFixture, TxCommitDurable) {
  ThreadCtx t = make_thread();
  pool.create(t, 64);
  const std::uint64_t root = pool.root(t);
  const std::uint64_t v = 0x1122334455667788ULL;
  {
    Tx tx(pool, t);
    tx.add(root, 8);
    tx.store(root, std::span<const std::uint8_t>(
                       reinterpret_cast<const std::uint8_t*>(&v), 8));
    tx.commit();
  }
  platform.crash();
  Pool p(ns);
  ASSERT_TRUE(p.open(t));
  EXPECT_EQ(ns.load_pod<std::uint64_t>(t, root), v);
}

TEST_F(PoolFixture, TxAbortRollsBack) {
  ThreadCtx t = make_thread();
  pool.create(t, 64);
  const std::uint64_t root = pool.root(t);
  const std::uint64_t v1 = 111, v2 = 222;
  store_persist_pod(t, ns, root, v1);
  {
    Tx tx(pool, t);
    tx.add(root, 8);
    tx.store(root, std::span<const std::uint8_t>(
                       reinterpret_cast<const std::uint8_t*>(&v2), 8));
    tx.abort();
  }
  EXPECT_EQ(ns.load_pod<std::uint64_t>(t, root), v1);
}

TEST_F(PoolFixture, DestructorAborts) {
  ThreadCtx t = make_thread();
  pool.create(t, 64);
  const std::uint64_t root = pool.root(t);
  const std::uint64_t v1 = 7, v2 = 8;
  store_persist_pod(t, ns, root, v1);
  {
    Tx tx(pool, t);
    tx.add(root, 8);
    tx.store(root, std::span<const std::uint8_t>(
                       reinterpret_cast<const std::uint8_t*>(&v2), 8));
    // no commit
  }
  EXPECT_EQ(ns.load_pod<std::uint64_t>(t, root), v1);
}

// Property: crash at any point during a multi-field transaction recovers
// to all-old (never a mix), because recovery rolls back the active lane.
class TxCrashPoint : public ::testing::TestWithParam<int> {};

TEST_P(TxCrashPoint, AllOrNothing) {
  const int crash_after = GetParam();
  Platform platform;
  PmemNamespace& ns = platform.optane(64 << 20);
  ThreadCtx t = make_thread();
  Pool pool(ns);
  pool.create(t, 256);
  const std::uint64_t root = pool.root(t);

  // Initial state: four slots = 1,2,3,4 (durable).
  for (int i = 0; i < 4; ++i)
    store_persist_pod(t, ns, root + i * 8, std::uint64_t(i + 1));

  {
    Tx tx(pool, t);
    for (int step = 0; step < 4; ++step) {
      if (step == crash_after) break;
      tx.add(root + step * 8, 8);
      const std::uint64_t nv = 100 + step;
      tx.store(root + step * 8,
               std::span<const std::uint8_t>(
                   reinterpret_cast<const std::uint8_t*>(&nv), 8));
    }
    platform.crash();  // power fails mid-transaction
    tx.release();      // the process is gone; recovery happens in open()
  }

  Pool recovered(ns);
  ASSERT_TRUE(recovered.open(t));
  for (int i = 0; i < 4; ++i) {
    EXPECT_EQ(ns.load_pod<std::uint64_t>(t, root + i * 8),
              static_cast<std::uint64_t>(i + 1))
        << "slot " << i << " crash_after " << crash_after;
  }
}

INSTANTIATE_TEST_SUITE_P(CrashPoints, TxCrashPoint, ::testing::Range(0, 5));

TEST(TxCommitCrash, CommittedSurvives) {
  Platform platform;
  PmemNamespace& ns = platform.optane(64 << 20);
  ThreadCtx t = make_thread();
  Pool pool(ns);
  pool.create(t, 64);
  const std::uint64_t root = pool.root(t);
  {
    Tx tx(pool, t);
    tx.add(root, 8);
    const std::uint64_t v = 42;
    tx.store(root, std::span<const std::uint8_t>(
                       reinterpret_cast<const std::uint8_t*>(&v), 8));
    tx.commit();
  }
  platform.crash();
  Pool recovered(ns);
  ASSERT_TRUE(recovered.open(t));
  EXPECT_EQ(ns.load_pod<std::uint64_t>(t, root), 42u);
}

// ------------------------------------------------------------ pmem_ops --
TEST(PmemOps, AutoHintPicksByCrossover) {
  Platform platform;
  PmemNamespace& ns = platform.optane(16 << 20);
  ThreadCtx t = make_thread();

  // Below the crossover: cached stores end up in the cache (clean copy
  // retained after clwb).
  std::vector<std::uint8_t> small(256, 0xaa);
  memcpy_persist(t, ns, 0, small, WriteHint::kAuto);
  EXPECT_TRUE(platform.cache(0).contains(ns.base() + 0));

  // Above: non-temporal, bypasses the cache.
  std::vector<std::uint8_t> big(4096, 0xbb);
  memcpy_persist(t, ns, 1 << 20, big, WriteHint::kAuto);
  EXPECT_FALSE(platform.cache(0).contains(ns.base() + (1 << 20)));
}

TEST(PmemOps, PersistSurvivesCrash) {
  Platform platform;
  PmemNamespace& ns = platform.optane(16 << 20);
  ThreadCtx t = make_thread();
  std::vector<std::uint8_t> data(512);
  for (std::size_t i = 0; i < data.size(); ++i)
    data[i] = static_cast<std::uint8_t>(i);
  memcpy_persist(t, ns, 4096, data, WriteHint::kCached);
  platform.crash();
  std::vector<std::uint8_t> out(512);
  ns.peek(4096, out);
  EXPECT_EQ(out, data);
}

// ------------------------------------------------------------ microbuf --
struct MicroBufFixture : PoolFixture {
  void SetUp() override {
    ThreadCtx t = make_thread();
    pool.create(t, 8192);
  }
};

TEST_F(MicroBufFixture, UpdateAppliesMutation) {
  ThreadCtx t = make_thread();
  MicroBuf mb(pool, WriteBack::kAdaptive);
  const std::uint64_t obj = pool.root(t);
  mb.update(t, obj, 128, [](std::span<std::uint8_t> o) {
    for (auto& b : o) b = 0x5c;
  });
  std::vector<std::uint8_t> out(128);
  ns.peek(obj, out);  // durable, not just cached
  for (auto b : out) EXPECT_EQ(b, 0x5c);
}

TEST_F(MicroBufFixture, NtAndClwbProduceSameData) {
  ThreadCtx t = make_thread();
  const std::uint64_t obj = pool.root(t);
  MicroBuf nt(pool, WriteBack::kNt);
  nt.update(t, obj, 2048, [](std::span<std::uint8_t> o) {
    for (std::size_t i = 0; i < o.size(); ++i)
      o[i] = static_cast<std::uint8_t>(i * 3);
  });
  std::vector<std::uint8_t> a(2048);
  ns.peek(obj, a);

  MicroBuf cl(pool, WriteBack::kClwb);
  cl.update(t, obj + 2048, 2048, [](std::span<std::uint8_t> o) {
    for (std::size_t i = 0; i < o.size(); ++i)
      o[i] = static_cast<std::uint8_t>(i * 3);
  });
  std::vector<std::uint8_t> b(2048);
  platform.writeback_all_caches();
  ns.peek(obj + 2048, b);
  EXPECT_EQ(a, b);
}

TEST_F(MicroBufFixture, CrashMidWritebackRollsBack) {
  ThreadCtx t = make_thread();
  const std::uint64_t obj = pool.root(t);
  std::vector<std::uint8_t> init(256, 0x11);
  ns.ntstore_persist(t, obj, init);

  // Simulate a crash between undo-log append and commit by doing the
  // same steps MicroBuf does, then crashing before commit.
  {
    Tx tx(pool, t);
    tx.add(obj, 256);
    std::vector<std::uint8_t> half(256, 0x22);
    ns.ntstore(t, obj, std::span<const std::uint8_t>(half.data(), 128));
    ns.sfence(t);
    platform.crash();
    tx.release();
  }
  Pool recovered(ns);
  ASSERT_TRUE(recovered.open(t));
  std::vector<std::uint8_t> out(256);
  ns.peek(obj, out);
  for (auto b : out) EXPECT_EQ(b, 0x11);
}

TEST_F(MicroBufFixture, LatencyCrossoverShape) {
  // Fig 15: PGL-CLWB is faster for small objects, PGL-NT for large.
  // Cold objects: each update touches a distinct object, as in the
  // paper's Fig 15 sweep. (For a hot object the CPU cache retains the
  // clwb'd copy and kClwb wins at every size.)
  ThreadCtx setup = make_thread(9);
  std::uint64_t arena;
  {
    Tx tx(pool, setup);
    arena = pool.tx_alloc(tx, 64 * 8192);
    tx.commit();
  }
  auto measure = [&](WriteBack mode, std::size_t size) {
    MicroBuf mb(pool, mode);
    platform.reset_timing();
    ThreadCtx tt = make_thread(3);
    const sim::Time t0 = tt.now();
    for (int i = 0; i < 32; ++i)
      mb.update(tt, arena + static_cast<std::uint64_t>(i) * 8192, size,
                [](std::span<std::uint8_t>) {});
    return (tt.now() - t0) / 32;
  };
  EXPECT_LT(measure(WriteBack::kClwb, 128), measure(WriteBack::kNt, 128));
  EXPECT_LT(measure(WriteBack::kNt, 8192), measure(WriteBack::kClwb, 8192));
}

}  // namespace
}  // namespace xp::pmem
