# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/sim_test[1]_include.cmake")
include("/root/repo/build/tests/platform_test[1]_include.cmake")
include("/root/repo/build/tests/lattester_test[1]_include.cmake")
include("/root/repo/build/tests/pmemlib_test[1]_include.cmake")
include("/root/repo/build/tests/lsmkv_test[1]_include.cmake")
include("/root/repo/build/tests/novafs_test[1]_include.cmake")
include("/root/repo/build/tests/pmemkv_test[1]_include.cmake")
include("/root/repo/build/tests/stree_test[1]_include.cmake")
include("/root/repo/build/tests/fio_test[1]_include.cmake")
include("/root/repo/build/tests/memory_mode_test[1]_include.cmake")
include("/root/repo/build/tests/device_test[1]_include.cmake")
include("/root/repo/build/tests/property_test[1]_include.cmake")
