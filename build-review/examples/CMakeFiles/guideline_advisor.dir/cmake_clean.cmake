file(REMOVE_RECURSE
  "CMakeFiles/guideline_advisor.dir/guideline_advisor.cpp.o"
  "CMakeFiles/guideline_advisor.dir/guideline_advisor.cpp.o.d"
  "guideline_advisor"
  "guideline_advisor.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/guideline_advisor.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
