# Empty dependencies file for guideline_advisor.
# This may be replaced when dependencies are built.
