# Empty compiler generated dependencies file for fsdemo.
# This may be replaced when dependencies are built.
