file(REMOVE_RECURSE
  "CMakeFiles/fsdemo.dir/fsdemo.cpp.o"
  "CMakeFiles/fsdemo.dir/fsdemo.cpp.o.d"
  "fsdemo"
  "fsdemo.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fsdemo.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
