file(REMOVE_RECURSE
  "CMakeFiles/txdemo.dir/txdemo.cpp.o"
  "CMakeFiles/txdemo.dir/txdemo.cpp.o.d"
  "txdemo"
  "txdemo.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/txdemo.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
