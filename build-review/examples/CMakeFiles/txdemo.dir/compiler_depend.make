# Empty compiler generated dependencies file for txdemo.
# This may be replaced when dependencies are built.
