# Empty compiler generated dependencies file for kvstore_demo.
# This may be replaced when dependencies are built.
