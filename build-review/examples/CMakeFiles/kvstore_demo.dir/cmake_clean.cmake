file(REMOVE_RECURSE
  "CMakeFiles/kvstore_demo.dir/kvstore_demo.cpp.o"
  "CMakeFiles/kvstore_demo.dir/kvstore_demo.cpp.o.d"
  "kvstore_demo"
  "kvstore_demo.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/kvstore_demo.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
