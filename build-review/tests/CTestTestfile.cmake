# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build-review/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build-review/tests/sim_test[1]_include.cmake")
include("/root/repo/build-review/tests/platform_test[1]_include.cmake")
include("/root/repo/build-review/tests/lattester_test[1]_include.cmake")
include("/root/repo/build-review/tests/pmemlib_test[1]_include.cmake")
include("/root/repo/build-review/tests/lsmkv_test[1]_include.cmake")
include("/root/repo/build-review/tests/novafs_test[1]_include.cmake")
include("/root/repo/build-review/tests/pmemkv_test[1]_include.cmake")
include("/root/repo/build-review/tests/stree_test[1]_include.cmake")
include("/root/repo/build-review/tests/fio_test[1]_include.cmake")
include("/root/repo/build-review/tests/memory_mode_test[1]_include.cmake")
include("/root/repo/build-review/tests/device_test[1]_include.cmake")
include("/root/repo/build-review/tests/property_test[1]_include.cmake")
include("/root/repo/build-review/tests/sweep_test[1]_include.cmake")
include("/root/repo/build-review/tests/sparse_image_test[1]_include.cmake")
include("/root/repo/build-review/tests/crashmc_test[1]_include.cmake")
include("/root/repo/build-review/tests/faultmc_test[1]_include.cmake")
include("/root/repo/build-review/tests/telemetry_test[1]_include.cmake")
include("/root/repo/build-review/tests/crc32_test[1]_include.cmake")
include("/root/repo/build-review/tests/writecombine_test[1]_include.cmake")
include("/root/repo/build-review/tests/readpath_test[1]_include.cmake")
include("/root/repo/build-review/tests/schedmc_test[1]_include.cmake")
