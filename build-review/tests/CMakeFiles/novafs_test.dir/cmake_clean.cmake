file(REMOVE_RECURSE
  "CMakeFiles/novafs_test.dir/novafs_test.cc.o"
  "CMakeFiles/novafs_test.dir/novafs_test.cc.o.d"
  "novafs_test"
  "novafs_test.pdb"
  "novafs_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/novafs_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
