# Empty dependencies file for novafs_test.
# This may be replaced when dependencies are built.
