file(REMOVE_RECURSE
  "CMakeFiles/sparse_image_test.dir/sparse_image_test.cc.o"
  "CMakeFiles/sparse_image_test.dir/sparse_image_test.cc.o.d"
  "sparse_image_test"
  "sparse_image_test.pdb"
  "sparse_image_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sparse_image_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
