# Empty dependencies file for sparse_image_test.
# This may be replaced when dependencies are built.
