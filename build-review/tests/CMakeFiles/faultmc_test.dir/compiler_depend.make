# Empty compiler generated dependencies file for faultmc_test.
# This may be replaced when dependencies are built.
