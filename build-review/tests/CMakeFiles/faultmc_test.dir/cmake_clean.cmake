file(REMOVE_RECURSE
  "CMakeFiles/faultmc_test.dir/faultmc_test.cc.o"
  "CMakeFiles/faultmc_test.dir/faultmc_test.cc.o.d"
  "faultmc_test"
  "faultmc_test.pdb"
  "faultmc_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/faultmc_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
