file(REMOVE_RECURSE
  "CMakeFiles/crc32_test.dir/crc32_test.cc.o"
  "CMakeFiles/crc32_test.dir/crc32_test.cc.o.d"
  "crc32_test"
  "crc32_test.pdb"
  "crc32_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/crc32_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
