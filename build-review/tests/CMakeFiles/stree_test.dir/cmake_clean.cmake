file(REMOVE_RECURSE
  "CMakeFiles/stree_test.dir/stree_test.cc.o"
  "CMakeFiles/stree_test.dir/stree_test.cc.o.d"
  "stree_test"
  "stree_test.pdb"
  "stree_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/stree_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
