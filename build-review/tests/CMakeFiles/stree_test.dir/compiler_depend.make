# Empty compiler generated dependencies file for stree_test.
# This may be replaced when dependencies are built.
