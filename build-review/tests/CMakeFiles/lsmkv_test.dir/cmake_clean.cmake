file(REMOVE_RECURSE
  "CMakeFiles/lsmkv_test.dir/lsmkv_test.cc.o"
  "CMakeFiles/lsmkv_test.dir/lsmkv_test.cc.o.d"
  "lsmkv_test"
  "lsmkv_test.pdb"
  "lsmkv_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/lsmkv_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
