# Empty dependencies file for lsmkv_test.
# This may be replaced when dependencies are built.
