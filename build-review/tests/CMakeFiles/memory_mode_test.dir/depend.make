# Empty dependencies file for memory_mode_test.
# This may be replaced when dependencies are built.
