file(REMOVE_RECURSE
  "CMakeFiles/memory_mode_test.dir/memory_mode_test.cc.o"
  "CMakeFiles/memory_mode_test.dir/memory_mode_test.cc.o.d"
  "memory_mode_test"
  "memory_mode_test.pdb"
  "memory_mode_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/memory_mode_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
