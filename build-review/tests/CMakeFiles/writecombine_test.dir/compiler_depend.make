# Empty compiler generated dependencies file for writecombine_test.
# This may be replaced when dependencies are built.
