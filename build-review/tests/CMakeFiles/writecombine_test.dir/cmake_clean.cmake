file(REMOVE_RECURSE
  "CMakeFiles/writecombine_test.dir/writecombine_test.cc.o"
  "CMakeFiles/writecombine_test.dir/writecombine_test.cc.o.d"
  "writecombine_test"
  "writecombine_test.pdb"
  "writecombine_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/writecombine_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
