file(REMOVE_RECURSE
  "CMakeFiles/fio_test.dir/fio_test.cc.o"
  "CMakeFiles/fio_test.dir/fio_test.cc.o.d"
  "fio_test"
  "fio_test.pdb"
  "fio_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fio_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
