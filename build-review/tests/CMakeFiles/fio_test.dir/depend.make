# Empty dependencies file for fio_test.
# This may be replaced when dependencies are built.
