file(REMOVE_RECURSE
  "CMakeFiles/lattester_test.dir/lattester_test.cc.o"
  "CMakeFiles/lattester_test.dir/lattester_test.cc.o.d"
  "lattester_test"
  "lattester_test.pdb"
  "lattester_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/lattester_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
