# Empty compiler generated dependencies file for lattester_test.
# This may be replaced when dependencies are built.
