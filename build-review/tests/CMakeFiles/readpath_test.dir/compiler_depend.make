# Empty compiler generated dependencies file for readpath_test.
# This may be replaced when dependencies are built.
