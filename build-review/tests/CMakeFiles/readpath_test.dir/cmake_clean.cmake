file(REMOVE_RECURSE
  "CMakeFiles/readpath_test.dir/readpath_test.cc.o"
  "CMakeFiles/readpath_test.dir/readpath_test.cc.o.d"
  "readpath_test"
  "readpath_test.pdb"
  "readpath_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/readpath_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
