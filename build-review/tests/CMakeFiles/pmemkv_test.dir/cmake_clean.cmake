file(REMOVE_RECURSE
  "CMakeFiles/pmemkv_test.dir/pmemkv_test.cc.o"
  "CMakeFiles/pmemkv_test.dir/pmemkv_test.cc.o.d"
  "pmemkv_test"
  "pmemkv_test.pdb"
  "pmemkv_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pmemkv_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
