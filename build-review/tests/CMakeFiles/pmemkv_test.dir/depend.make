# Empty dependencies file for pmemkv_test.
# This may be replaced when dependencies are built.
