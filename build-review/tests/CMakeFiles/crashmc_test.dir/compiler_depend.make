# Empty compiler generated dependencies file for crashmc_test.
# This may be replaced when dependencies are built.
