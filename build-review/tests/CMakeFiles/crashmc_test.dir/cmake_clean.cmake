file(REMOVE_RECURSE
  "CMakeFiles/crashmc_test.dir/crashmc_test.cc.o"
  "CMakeFiles/crashmc_test.dir/crashmc_test.cc.o.d"
  "crashmc_test"
  "crashmc_test.pdb"
  "crashmc_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/crashmc_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
