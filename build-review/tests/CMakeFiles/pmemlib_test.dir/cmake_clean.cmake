file(REMOVE_RECURSE
  "CMakeFiles/pmemlib_test.dir/pmemlib_test.cc.o"
  "CMakeFiles/pmemlib_test.dir/pmemlib_test.cc.o.d"
  "pmemlib_test"
  "pmemlib_test.pdb"
  "pmemlib_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pmemlib_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
