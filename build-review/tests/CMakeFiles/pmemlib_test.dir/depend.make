# Empty dependencies file for pmemlib_test.
# This may be replaced when dependencies are built.
