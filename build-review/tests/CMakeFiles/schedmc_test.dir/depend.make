# Empty dependencies file for schedmc_test.
# This may be replaced when dependencies are built.
