file(REMOVE_RECURSE
  "CMakeFiles/schedmc_test.dir/schedmc_test.cc.o"
  "CMakeFiles/schedmc_test.dir/schedmc_test.cc.o.d"
  "schedmc_test"
  "schedmc_test.pdb"
  "schedmc_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/schedmc_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
