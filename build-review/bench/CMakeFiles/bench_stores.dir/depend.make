# Empty dependencies file for bench_stores.
# This may be replaced when dependencies are built.
