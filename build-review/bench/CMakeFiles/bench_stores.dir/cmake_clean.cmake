file(REMOVE_RECURSE
  "CMakeFiles/bench_stores.dir/bench_stores.cc.o"
  "CMakeFiles/bench_stores.dir/bench_stores.cc.o.d"
  "bench_stores"
  "bench_stores.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_stores.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
