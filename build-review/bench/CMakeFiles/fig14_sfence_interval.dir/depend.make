# Empty dependencies file for fig14_sfence_interval.
# This may be replaced when dependencies are built.
