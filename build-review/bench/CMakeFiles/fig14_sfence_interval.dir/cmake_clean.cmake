file(REMOVE_RECURSE
  "CMakeFiles/fig14_sfence_interval.dir/fig14_sfence_interval.cc.o"
  "CMakeFiles/fig14_sfence_interval.dir/fig14_sfence_interval.cc.o.d"
  "fig14_sfence_interval"
  "fig14_sfence_interval.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig14_sfence_interval.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
