file(REMOVE_RECURSE
  "CMakeFiles/fig07_emulation.dir/fig07_emulation.cc.o"
  "CMakeFiles/fig07_emulation.dir/fig07_emulation.cc.o.d"
  "fig07_emulation"
  "fig07_emulation.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig07_emulation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
