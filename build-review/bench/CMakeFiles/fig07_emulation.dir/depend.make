# Empty dependencies file for fig07_emulation.
# This may be replaced when dependencies are built.
