file(REMOVE_RECURSE
  "CMakeFiles/abl_memory_mode.dir/abl_memory_mode.cc.o"
  "CMakeFiles/abl_memory_mode.dir/abl_memory_mode.cc.o.d"
  "abl_memory_mode"
  "abl_memory_mode.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/abl_memory_mode.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
