# Empty compiler generated dependencies file for abl_memory_mode.
# This may be replaced when dependencies are built.
