file(REMOVE_RECURSE
  "CMakeFiles/fig02_idle_latency.dir/fig02_idle_latency.cc.o"
  "CMakeFiles/fig02_idle_latency.dir/fig02_idle_latency.cc.o.d"
  "fig02_idle_latency"
  "fig02_idle_latency.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig02_idle_latency.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
