# Empty dependencies file for fig02_idle_latency.
# This may be replaced when dependencies are built.
