file(REMOVE_RECURSE
  "CMakeFiles/abl_xpbuffer_size.dir/abl_xpbuffer_size.cc.o"
  "CMakeFiles/abl_xpbuffer_size.dir/abl_xpbuffer_size.cc.o.d"
  "abl_xpbuffer_size"
  "abl_xpbuffer_size.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/abl_xpbuffer_size.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
