# Empty compiler generated dependencies file for abl_xpbuffer_size.
# This may be replaced when dependencies are built.
