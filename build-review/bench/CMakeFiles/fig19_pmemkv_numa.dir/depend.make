# Empty dependencies file for fig19_pmemkv_numa.
# This may be replaced when dependencies are built.
