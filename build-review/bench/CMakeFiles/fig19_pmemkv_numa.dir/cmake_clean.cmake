file(REMOVE_RECURSE
  "CMakeFiles/fig19_pmemkv_numa.dir/fig19_pmemkv_numa.cc.o"
  "CMakeFiles/fig19_pmemkv_numa.dir/fig19_pmemkv_numa.cc.o.d"
  "fig19_pmemkv_numa"
  "fig19_pmemkv_numa.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig19_pmemkv_numa.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
