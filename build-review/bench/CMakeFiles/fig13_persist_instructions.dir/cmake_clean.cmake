file(REMOVE_RECURSE
  "CMakeFiles/fig13_persist_instructions.dir/fig13_persist_instructions.cc.o"
  "CMakeFiles/fig13_persist_instructions.dir/fig13_persist_instructions.cc.o.d"
  "fig13_persist_instructions"
  "fig13_persist_instructions.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig13_persist_instructions.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
