# Empty compiler generated dependencies file for fig13_persist_instructions.
# This may be replaced when dependencies are built.
