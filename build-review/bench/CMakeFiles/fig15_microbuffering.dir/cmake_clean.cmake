file(REMOVE_RECURSE
  "CMakeFiles/fig15_microbuffering.dir/fig15_microbuffering.cc.o"
  "CMakeFiles/fig15_microbuffering.dir/fig15_microbuffering.cc.o.d"
  "fig15_microbuffering"
  "fig15_microbuffering.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig15_microbuffering.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
