# Empty dependencies file for fig15_microbuffering.
# This may be replaced when dependencies are built.
