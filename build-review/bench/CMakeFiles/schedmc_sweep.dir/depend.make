# Empty dependencies file for schedmc_sweep.
# This may be replaced when dependencies are built.
