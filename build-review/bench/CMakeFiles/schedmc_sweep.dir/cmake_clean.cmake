file(REMOVE_RECURSE
  "CMakeFiles/schedmc_sweep.dir/schedmc_sweep.cc.o"
  "CMakeFiles/schedmc_sweep.dir/schedmc_sweep.cc.o.d"
  "schedmc_sweep"
  "schedmc_sweep.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/schedmc_sweep.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
