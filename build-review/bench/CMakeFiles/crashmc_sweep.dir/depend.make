# Empty dependencies file for crashmc_sweep.
# This may be replaced when dependencies are built.
