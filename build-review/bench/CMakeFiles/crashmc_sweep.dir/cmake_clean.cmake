file(REMOVE_RECURSE
  "CMakeFiles/crashmc_sweep.dir/crashmc_sweep.cc.o"
  "CMakeFiles/crashmc_sweep.dir/crashmc_sweep.cc.o.d"
  "crashmc_sweep"
  "crashmc_sweep.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/crashmc_sweep.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
