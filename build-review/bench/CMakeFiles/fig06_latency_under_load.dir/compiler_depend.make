# Empty compiler generated dependencies file for fig06_latency_under_load.
# This may be replaced when dependencies are built.
