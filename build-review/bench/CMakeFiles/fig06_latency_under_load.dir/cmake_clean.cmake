file(REMOVE_RECURSE
  "CMakeFiles/fig06_latency_under_load.dir/fig06_latency_under_load.cc.o"
  "CMakeFiles/fig06_latency_under_load.dir/fig06_latency_under_load.cc.o.d"
  "fig06_latency_under_load"
  "fig06_latency_under_load.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig06_latency_under_load.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
