file(REMOVE_RECURSE
  "CMakeFiles/fig03_tail_latency.dir/fig03_tail_latency.cc.o"
  "CMakeFiles/fig03_tail_latency.dir/fig03_tail_latency.cc.o.d"
  "fig03_tail_latency"
  "fig03_tail_latency.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig03_tail_latency.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
