# Empty dependencies file for fig17_multidimm_nova.
# This may be replaced when dependencies are built.
