file(REMOVE_RECURSE
  "CMakeFiles/fig17_multidimm_nova.dir/fig17_multidimm_nova.cc.o"
  "CMakeFiles/fig17_multidimm_nova.dir/fig17_multidimm_nova.cc.o.d"
  "fig17_multidimm_nova"
  "fig17_multidimm_nova.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig17_multidimm_nova.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
