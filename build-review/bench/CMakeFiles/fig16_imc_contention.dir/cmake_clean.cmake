file(REMOVE_RECURSE
  "CMakeFiles/fig16_imc_contention.dir/fig16_imc_contention.cc.o"
  "CMakeFiles/fig16_imc_contention.dir/fig16_imc_contention.cc.o.d"
  "fig16_imc_contention"
  "fig16_imc_contention.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig16_imc_contention.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
