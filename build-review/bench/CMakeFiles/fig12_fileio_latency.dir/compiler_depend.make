# Empty compiler generated dependencies file for fig12_fileio_latency.
# This may be replaced when dependencies are built.
