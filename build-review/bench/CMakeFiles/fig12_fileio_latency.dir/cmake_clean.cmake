file(REMOVE_RECURSE
  "CMakeFiles/fig12_fileio_latency.dir/fig12_fileio_latency.cc.o"
  "CMakeFiles/fig12_fileio_latency.dir/fig12_fileio_latency.cc.o.d"
  "fig12_fileio_latency"
  "fig12_fileio_latency.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig12_fileio_latency.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
