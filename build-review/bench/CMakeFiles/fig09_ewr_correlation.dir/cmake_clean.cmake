file(REMOVE_RECURSE
  "CMakeFiles/fig09_ewr_correlation.dir/fig09_ewr_correlation.cc.o"
  "CMakeFiles/fig09_ewr_correlation.dir/fig09_ewr_correlation.cc.o.d"
  "fig09_ewr_correlation"
  "fig09_ewr_correlation.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig09_ewr_correlation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
