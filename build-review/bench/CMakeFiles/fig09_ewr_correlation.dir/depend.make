# Empty dependencies file for fig09_ewr_correlation.
# This may be replaced when dependencies are built.
