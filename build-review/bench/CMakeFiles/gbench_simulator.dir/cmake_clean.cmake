file(REMOVE_RECURSE
  "CMakeFiles/gbench_simulator.dir/gbench_simulator.cc.o"
  "CMakeFiles/gbench_simulator.dir/gbench_simulator.cc.o.d"
  "gbench_simulator"
  "gbench_simulator.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/gbench_simulator.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
