# Empty dependencies file for gbench_simulator.
# This may be replaced when dependencies are built.
