# Empty compiler generated dependencies file for abl_wpq_credit.
# This may be replaced when dependencies are built.
