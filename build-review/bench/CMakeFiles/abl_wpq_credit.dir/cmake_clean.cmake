file(REMOVE_RECURSE
  "CMakeFiles/abl_wpq_credit.dir/abl_wpq_credit.cc.o"
  "CMakeFiles/abl_wpq_credit.dir/abl_wpq_credit.cc.o.d"
  "abl_wpq_credit"
  "abl_wpq_credit.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/abl_wpq_credit.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
