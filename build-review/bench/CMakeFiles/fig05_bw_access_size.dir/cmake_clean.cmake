file(REMOVE_RECURSE
  "CMakeFiles/fig05_bw_access_size.dir/fig05_bw_access_size.cc.o"
  "CMakeFiles/fig05_bw_access_size.dir/fig05_bw_access_size.cc.o.d"
  "fig05_bw_access_size"
  "fig05_bw_access_size.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig05_bw_access_size.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
