# Empty dependencies file for fig05_bw_access_size.
# This may be replaced when dependencies are built.
