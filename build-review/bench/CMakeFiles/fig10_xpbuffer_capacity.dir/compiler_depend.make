# Empty compiler generated dependencies file for fig10_xpbuffer_capacity.
# This may be replaced when dependencies are built.
