file(REMOVE_RECURSE
  "CMakeFiles/fig10_xpbuffer_capacity.dir/fig10_xpbuffer_capacity.cc.o"
  "CMakeFiles/fig10_xpbuffer_capacity.dir/fig10_xpbuffer_capacity.cc.o.d"
  "fig10_xpbuffer_capacity"
  "fig10_xpbuffer_capacity.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig10_xpbuffer_capacity.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
