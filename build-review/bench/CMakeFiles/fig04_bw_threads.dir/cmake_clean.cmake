file(REMOVE_RECURSE
  "CMakeFiles/fig04_bw_threads.dir/fig04_bw_threads.cc.o"
  "CMakeFiles/fig04_bw_threads.dir/fig04_bw_threads.cc.o.d"
  "fig04_bw_threads"
  "fig04_bw_threads.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig04_bw_threads.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
