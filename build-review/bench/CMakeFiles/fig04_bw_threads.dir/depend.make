# Empty dependencies file for fig04_bw_threads.
# This may be replaced when dependencies are built.
