
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/bench/fig18_numa_mix.cc" "bench/CMakeFiles/fig18_numa_mix.dir/fig18_numa_mix.cc.o" "gcc" "bench/CMakeFiles/fig18_numa_mix.dir/fig18_numa_mix.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build-review/src/lattester/CMakeFiles/lattester.dir/DependInfo.cmake"
  "/root/repo/build-review/src/telemetry/CMakeFiles/telemetry.dir/DependInfo.cmake"
  "/root/repo/build-review/src/xpsim/CMakeFiles/xpsim.dir/DependInfo.cmake"
  "/root/repo/build-review/src/sim/CMakeFiles/sim.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
