file(REMOVE_RECURSE
  "CMakeFiles/fig18_numa_mix.dir/fig18_numa_mix.cc.o"
  "CMakeFiles/fig18_numa_mix.dir/fig18_numa_mix.cc.o.d"
  "fig18_numa_mix"
  "fig18_numa_mix.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig18_numa_mix.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
