# Empty compiler generated dependencies file for fig18_numa_mix.
# This may be replaced when dependencies are built.
