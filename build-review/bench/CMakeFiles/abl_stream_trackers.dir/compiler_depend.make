# Empty compiler generated dependencies file for abl_stream_trackers.
# This may be replaced when dependencies are built.
