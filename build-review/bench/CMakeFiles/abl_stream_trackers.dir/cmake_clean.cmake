file(REMOVE_RECURSE
  "CMakeFiles/abl_stream_trackers.dir/abl_stream_trackers.cc.o"
  "CMakeFiles/abl_stream_trackers.dir/abl_stream_trackers.cc.o.d"
  "abl_stream_trackers"
  "abl_stream_trackers.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/abl_stream_trackers.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
