file(REMOVE_RECURSE
  "CMakeFiles/abl_eadr.dir/abl_eadr.cc.o"
  "CMakeFiles/abl_eadr.dir/abl_eadr.cc.o.d"
  "abl_eadr"
  "abl_eadr.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/abl_eadr.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
