# Empty compiler generated dependencies file for abl_eadr.
# This may be replaced when dependencies are built.
