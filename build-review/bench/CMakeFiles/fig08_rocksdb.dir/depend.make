# Empty dependencies file for fig08_rocksdb.
# This may be replaced when dependencies are built.
