file(REMOVE_RECURSE
  "CMakeFiles/fig08_rocksdb.dir/fig08_rocksdb.cc.o"
  "CMakeFiles/fig08_rocksdb.dir/fig08_rocksdb.cc.o.d"
  "fig08_rocksdb"
  "fig08_rocksdb.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig08_rocksdb.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
