file(REMOVE_RECURSE
  "CMakeFiles/crashmc.dir/explorer.cc.o"
  "CMakeFiles/crashmc.dir/explorer.cc.o.d"
  "CMakeFiles/crashmc.dir/faultcampaign.cc.o"
  "CMakeFiles/crashmc.dir/faultcampaign.cc.o.d"
  "CMakeFiles/crashmc.dir/workloads.cc.o"
  "CMakeFiles/crashmc.dir/workloads.cc.o.d"
  "libcrashmc.a"
  "libcrashmc.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/crashmc.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
