# Empty dependencies file for crashmc.
# This may be replaced when dependencies are built.
