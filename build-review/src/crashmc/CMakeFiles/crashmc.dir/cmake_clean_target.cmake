file(REMOVE_RECURSE
  "libcrashmc.a"
)
