file(REMOVE_RECURSE
  "liblsmkv.a"
)
