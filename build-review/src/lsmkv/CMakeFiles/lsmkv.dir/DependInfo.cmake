
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/lsmkv/db.cc" "src/lsmkv/CMakeFiles/lsmkv.dir/db.cc.o" "gcc" "src/lsmkv/CMakeFiles/lsmkv.dir/db.cc.o.d"
  "/root/repo/src/lsmkv/pskiplist.cc" "src/lsmkv/CMakeFiles/lsmkv.dir/pskiplist.cc.o" "gcc" "src/lsmkv/CMakeFiles/lsmkv.dir/pskiplist.cc.o.d"
  "/root/repo/src/lsmkv/sstable.cc" "src/lsmkv/CMakeFiles/lsmkv.dir/sstable.cc.o" "gcc" "src/lsmkv/CMakeFiles/lsmkv.dir/sstable.cc.o.d"
  "/root/repo/src/lsmkv/wal.cc" "src/lsmkv/CMakeFiles/lsmkv.dir/wal.cc.o" "gcc" "src/lsmkv/CMakeFiles/lsmkv.dir/wal.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build-review/src/pmemlib/CMakeFiles/pmemlib.dir/DependInfo.cmake"
  "/root/repo/build-review/src/xpsim/CMakeFiles/xpsim.dir/DependInfo.cmake"
  "/root/repo/build-review/src/sim/CMakeFiles/sim.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
