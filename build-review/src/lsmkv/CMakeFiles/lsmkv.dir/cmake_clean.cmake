file(REMOVE_RECURSE
  "CMakeFiles/lsmkv.dir/db.cc.o"
  "CMakeFiles/lsmkv.dir/db.cc.o.d"
  "CMakeFiles/lsmkv.dir/pskiplist.cc.o"
  "CMakeFiles/lsmkv.dir/pskiplist.cc.o.d"
  "CMakeFiles/lsmkv.dir/sstable.cc.o"
  "CMakeFiles/lsmkv.dir/sstable.cc.o.d"
  "CMakeFiles/lsmkv.dir/wal.cc.o"
  "CMakeFiles/lsmkv.dir/wal.cc.o.d"
  "liblsmkv.a"
  "liblsmkv.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/lsmkv.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
