# Empty dependencies file for lsmkv.
# This may be replaced when dependencies are built.
