file(REMOVE_RECURSE
  "CMakeFiles/telemetry.dir/registry.cc.o"
  "CMakeFiles/telemetry.dir/registry.cc.o.d"
  "CMakeFiles/telemetry.dir/sampler.cc.o"
  "CMakeFiles/telemetry.dir/sampler.cc.o.d"
  "CMakeFiles/telemetry.dir/session.cc.o"
  "CMakeFiles/telemetry.dir/session.cc.o.d"
  "CMakeFiles/telemetry.dir/trace.cc.o"
  "CMakeFiles/telemetry.dir/trace.cc.o.d"
  "libtelemetry.a"
  "libtelemetry.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/telemetry.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
