
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/telemetry/registry.cc" "src/telemetry/CMakeFiles/telemetry.dir/registry.cc.o" "gcc" "src/telemetry/CMakeFiles/telemetry.dir/registry.cc.o.d"
  "/root/repo/src/telemetry/sampler.cc" "src/telemetry/CMakeFiles/telemetry.dir/sampler.cc.o" "gcc" "src/telemetry/CMakeFiles/telemetry.dir/sampler.cc.o.d"
  "/root/repo/src/telemetry/session.cc" "src/telemetry/CMakeFiles/telemetry.dir/session.cc.o" "gcc" "src/telemetry/CMakeFiles/telemetry.dir/session.cc.o.d"
  "/root/repo/src/telemetry/trace.cc" "src/telemetry/CMakeFiles/telemetry.dir/trace.cc.o" "gcc" "src/telemetry/CMakeFiles/telemetry.dir/trace.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build-review/src/xpsim/CMakeFiles/xpsim.dir/DependInfo.cmake"
  "/root/repo/build-review/src/sim/CMakeFiles/sim.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
