file(REMOVE_RECURSE
  "libtelemetry.a"
)
