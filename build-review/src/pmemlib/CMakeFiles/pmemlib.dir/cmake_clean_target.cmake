file(REMOVE_RECURSE
  "libpmemlib.a"
)
