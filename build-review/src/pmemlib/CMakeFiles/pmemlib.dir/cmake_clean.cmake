file(REMOVE_RECURSE
  "CMakeFiles/pmemlib.dir/microbuf.cc.o"
  "CMakeFiles/pmemlib.dir/microbuf.cc.o.d"
  "CMakeFiles/pmemlib.dir/pool.cc.o"
  "CMakeFiles/pmemlib.dir/pool.cc.o.d"
  "libpmemlib.a"
  "libpmemlib.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pmemlib.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
