# Empty dependencies file for pmemlib.
# This may be replaced when dependencies are built.
