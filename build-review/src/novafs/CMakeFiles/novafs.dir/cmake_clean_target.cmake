file(REMOVE_RECURSE
  "libnovafs.a"
)
