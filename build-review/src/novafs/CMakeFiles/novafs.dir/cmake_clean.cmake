file(REMOVE_RECURSE
  "CMakeFiles/novafs.dir/daxfs.cc.o"
  "CMakeFiles/novafs.dir/daxfs.cc.o.d"
  "CMakeFiles/novafs.dir/novafs.cc.o"
  "CMakeFiles/novafs.dir/novafs.cc.o.d"
  "libnovafs.a"
  "libnovafs.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/novafs.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
