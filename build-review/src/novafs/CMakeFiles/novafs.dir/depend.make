# Empty dependencies file for novafs.
# This may be replaced when dependencies are built.
