file(REMOVE_RECURSE
  "CMakeFiles/pmemkv.dir/cmap.cc.o"
  "CMakeFiles/pmemkv.dir/cmap.cc.o.d"
  "CMakeFiles/pmemkv.dir/stree.cc.o"
  "CMakeFiles/pmemkv.dir/stree.cc.o.d"
  "libpmemkv.a"
  "libpmemkv.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pmemkv.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
