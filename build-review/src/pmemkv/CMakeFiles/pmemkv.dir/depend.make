# Empty dependencies file for pmemkv.
# This may be replaced when dependencies are built.
