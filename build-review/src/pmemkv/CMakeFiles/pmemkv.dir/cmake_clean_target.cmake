file(REMOVE_RECURSE
  "libpmemkv.a"
)
