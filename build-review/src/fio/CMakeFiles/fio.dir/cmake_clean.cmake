file(REMOVE_RECURSE
  "CMakeFiles/fio.dir/fio.cc.o"
  "CMakeFiles/fio.dir/fio.cc.o.d"
  "libfio.a"
  "libfio.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fio.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
