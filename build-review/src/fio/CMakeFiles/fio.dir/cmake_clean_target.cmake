file(REMOVE_RECURSE
  "libfio.a"
)
