# Empty compiler generated dependencies file for fio.
# This may be replaced when dependencies are built.
