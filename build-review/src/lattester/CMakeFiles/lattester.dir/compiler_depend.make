# Empty compiler generated dependencies file for lattester.
# This may be replaced when dependencies are built.
