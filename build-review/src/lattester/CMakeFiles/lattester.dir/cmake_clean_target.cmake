file(REMOVE_RECURSE
  "liblattester.a"
)
