file(REMOVE_RECURSE
  "CMakeFiles/lattester.dir/kernels.cc.o"
  "CMakeFiles/lattester.dir/kernels.cc.o.d"
  "CMakeFiles/lattester.dir/runner.cc.o"
  "CMakeFiles/lattester.dir/runner.cc.o.d"
  "liblattester.a"
  "liblattester.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/lattester.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
