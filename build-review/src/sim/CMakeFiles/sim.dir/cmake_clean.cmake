file(REMOVE_RECURSE
  "CMakeFiles/sim.dir/histogram.cc.o"
  "CMakeFiles/sim.dir/histogram.cc.o.d"
  "CMakeFiles/sim.dir/scheduler.cc.o"
  "CMakeFiles/sim.dir/scheduler.cc.o.d"
  "libsim.a"
  "libsim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
