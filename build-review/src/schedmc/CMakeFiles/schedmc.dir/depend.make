# Empty dependencies file for schedmc.
# This may be replaced when dependencies are built.
