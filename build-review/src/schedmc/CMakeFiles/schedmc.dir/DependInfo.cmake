
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/schedmc/explorer.cc" "src/schedmc/CMakeFiles/schedmc.dir/explorer.cc.o" "gcc" "src/schedmc/CMakeFiles/schedmc.dir/explorer.cc.o.d"
  "/root/repo/src/schedmc/history.cc" "src/schedmc/CMakeFiles/schedmc.dir/history.cc.o" "gcc" "src/schedmc/CMakeFiles/schedmc.dir/history.cc.o.d"
  "/root/repo/src/schedmc/interleave.cc" "src/schedmc/CMakeFiles/schedmc.dir/interleave.cc.o" "gcc" "src/schedmc/CMakeFiles/schedmc.dir/interleave.cc.o.d"
  "/root/repo/src/schedmc/targets.cc" "src/schedmc/CMakeFiles/schedmc.dir/targets.cc.o" "gcc" "src/schedmc/CMakeFiles/schedmc.dir/targets.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build-review/src/xpsim/CMakeFiles/xpsim.dir/DependInfo.cmake"
  "/root/repo/build-review/src/sim/CMakeFiles/sim.dir/DependInfo.cmake"
  "/root/repo/build-review/src/pmemlib/CMakeFiles/pmemlib.dir/DependInfo.cmake"
  "/root/repo/build-review/src/lsmkv/CMakeFiles/lsmkv.dir/DependInfo.cmake"
  "/root/repo/build-review/src/novafs/CMakeFiles/novafs.dir/DependInfo.cmake"
  "/root/repo/build-review/src/pmemkv/CMakeFiles/pmemkv.dir/DependInfo.cmake"
  "/root/repo/build-review/src/crashmc/CMakeFiles/crashmc.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
