file(REMOVE_RECURSE
  "libschedmc.a"
)
