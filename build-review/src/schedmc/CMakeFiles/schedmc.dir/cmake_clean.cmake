file(REMOVE_RECURSE
  "CMakeFiles/schedmc.dir/explorer.cc.o"
  "CMakeFiles/schedmc.dir/explorer.cc.o.d"
  "CMakeFiles/schedmc.dir/history.cc.o"
  "CMakeFiles/schedmc.dir/history.cc.o.d"
  "CMakeFiles/schedmc.dir/interleave.cc.o"
  "CMakeFiles/schedmc.dir/interleave.cc.o.d"
  "CMakeFiles/schedmc.dir/targets.cc.o"
  "CMakeFiles/schedmc.dir/targets.cc.o.d"
  "libschedmc.a"
  "libschedmc.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/schedmc.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
