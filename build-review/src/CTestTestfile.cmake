# CMake generated Testfile for 
# Source directory: /root/repo/src
# Build directory: /root/repo/build-review/src
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
subdirs("sim")
subdirs("sweep")
subdirs("xpsim")
subdirs("telemetry")
subdirs("lattester")
subdirs("pmemlib")
subdirs("lsmkv")
subdirs("novafs")
subdirs("pmemkv")
subdirs("fio")
subdirs("crashmc")
subdirs("schedmc")
