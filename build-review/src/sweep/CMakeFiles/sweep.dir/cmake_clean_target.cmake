file(REMOVE_RECURSE
  "libsweep.a"
)
