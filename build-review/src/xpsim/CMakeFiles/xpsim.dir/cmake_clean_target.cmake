file(REMOVE_RECURSE
  "libxpsim.a"
)
