# Empty dependencies file for xpsim.
# This may be replaced when dependencies are built.
