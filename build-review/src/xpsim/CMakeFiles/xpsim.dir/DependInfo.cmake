
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/xpsim/platform.cc" "src/xpsim/CMakeFiles/xpsim.dir/platform.cc.o" "gcc" "src/xpsim/CMakeFiles/xpsim.dir/platform.cc.o.d"
  "/root/repo/src/xpsim/xpbuffer.cc" "src/xpsim/CMakeFiles/xpsim.dir/xpbuffer.cc.o" "gcc" "src/xpsim/CMakeFiles/xpsim.dir/xpbuffer.cc.o.d"
  "/root/repo/src/xpsim/xpdimm.cc" "src/xpsim/CMakeFiles/xpsim.dir/xpdimm.cc.o" "gcc" "src/xpsim/CMakeFiles/xpsim.dir/xpdimm.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build-review/src/sim/CMakeFiles/sim.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
