file(REMOVE_RECURSE
  "CMakeFiles/xpsim.dir/platform.cc.o"
  "CMakeFiles/xpsim.dir/platform.cc.o.d"
  "CMakeFiles/xpsim.dir/xpbuffer.cc.o"
  "CMakeFiles/xpsim.dir/xpbuffer.cc.o.d"
  "CMakeFiles/xpsim.dir/xpdimm.cc.o"
  "CMakeFiles/xpsim.dir/xpdimm.cc.o.d"
  "libxpsim.a"
  "libxpsim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/xpsim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
