# CMake generated Testfile for 
# Source directory: /root/repo/src/xpsim
# Build directory: /root/repo/build-review/src/xpsim
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
